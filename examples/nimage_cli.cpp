//===- nimage_cli.cpp - Command-line driver for the pipeline ----------------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// A small CLI over the public API:
//
//   nimage_cli build  <bench|file.mj> [--out image.nimg] [--seed N]
//                     [--code cu|method|cluster] [--heap inc|struct|path]
//                     [--split none|hotcold] [--blocks none|exttsp]
//   nimage_cli run    <bench|file.mj> [--image image.nimg] [--warm]
//   nimage_cli profile <bench|file.mj> [--dir profiles/] [--cluster-budget B]
//
// <bench> is an AWFY benchmark name (e.g. Richards), a microservice name
// (micronaut/quarkus/spring), or a path to a MiniJava source file (which
// is linked against the som library and the runtime prelude).
// `build --code/--heap` reads the CSV profiles written by `profile`.
//
// Observability flags (any command):
//   --metrics          print the metrics registry after the command
//   --trace-out FILE   write a Chrome trace-event JSON of the pipeline spans
//   --report FILE      write the unified startup report (JSON; CSV if FILE
//                      ends in .csv)
//
//===----------------------------------------------------------------------===//

#include "src/core/Builder.h"
#include "src/fleet/FleetSim.h"
#include "src/image/ImageFile.h"
#include "src/lang/Compile.h"
#include "src/obs/Metrics.h"
#include "src/obs/SpanTracer.h"
#include "src/obs/StartupReport.h"
#include "src/support/AtomicFile.h"
#include "src/support/ThreadPool.h"
#include "src/workloads/Workloads.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

using namespace nimg;

namespace {

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

/// All CLI artifacts go through temp-file + rename: a crash mid-write
/// leaves the previous file intact instead of a truncated one for a later
/// build to quarantine.
bool writeFile(const std::string &Path, const std::string &Data) {
  return atomicWriteFile(Path, Data);
}

std::unique_ptr<Program> loadTarget(const std::string &Target) {
  std::vector<std::string> Errors;
  std::unique_ptr<Program> P;
  bool IsAwfy = false;
  for (const std::string &N : awfyBenchmarkNames())
    if (N == Target)
      IsAwfy = true;
  bool IsMicro = false;
  for (const std::string &N : microserviceNames())
    if (N == Target)
      IsMicro = true;

  if (IsAwfy) {
    P = compileBenchmark(awfyBenchmark(Target), Errors);
  } else if (IsMicro) {
    P = compileBenchmark(microserviceBenchmark(Target), Errors);
  } else {
    std::string Source;
    if (!readFile(Target, Source)) {
      std::fprintf(stderr, "error: cannot read '%s' (and it is not a known "
                           "benchmark name)\n",
                   Target.c_str());
      return nullptr;
    }
    P = std::make_unique<Program>();
    if (!compileSources({somLibrarySource(), runtimePreludeSource(), Source},
                        *P, Errors))
      P.reset();
  }
  if (!P) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "error: %s\n", E.c_str());
    return nullptr;
  }
  return P;
}

const char *flagValue(int Argc, char **Argv, const char *Flag) {
  for (int I = 0; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], Flag) == 0)
      return Argv[I + 1];
  return nullptr;
}

bool hasFlag(int Argc, char **Argv, const char *Flag) {
  for (int I = 0; I < Argc; ++I)
    if (std::strcmp(Argv[I], Flag) == 0)
      return true;
  return false;
}

/// Parses --huge-pages into \p Cfg (build and profile both consume it: the
/// layout maps the region, the cluster solver packs against the budget).
/// Returns false after printing an error for a malformed value.
bool parseHugePages(int Argc, char **Argv, BuildConfig &Cfg) {
  const char *Huge = flagValue(Argc, Argv, "--huge-pages");
  if (!Huge)
    return true;
  long long N = std::atoll(Huge);
  if (N < 0 || N > (1ll << 20)) {
    std::fprintf(stderr, "error: --huge-pages expects a 2 MiB page count "
                         ">= 0 (0 = no huge pages), got '%s'\n",
                 Huge);
    return false;
  }
  Cfg.Image.HugePages = uint32_t(N);
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  nimage_cli build   <target> [--out F] [--seed N] "
               "[--profiles DIR|a.csv,b.csv,...] [--profile-dir DIR] "
               "[--code cu|method|cluster] "
               "[--heap inc|struct|path] [--split none|hotcold] "
               "[--blocks none|exttsp] [--huge-pages N]\n"
               "  nimage_cli run     <target> [--image F] [--warm]\n"
               "                     [--fleet N] "
               "[--arrivals uniform|poisson|storm]\n"
               "                     [--arrival-window-ns W] [--fleet-seed S] "
               "[--storm-bursts B]\n"
               "                     [--cache-pages C]\n"
               "  nimage_cli profile <target> [--dir DIR] "
               "[--generation N] [--cluster-budget BYTES] [--huge-pages N]\n"
               "                     [--profile-mode instrumented|sampled] "
               "[--sample-period N]\n"
               "fleet simulation (run):\n"
               "  --fleet N          simulate N concurrent instances sharing "
               "a fork/COW page\n"
               "                     cache (cold-start storm); --arrivals "
               "picks the arrival\n"
               "                     distribution over --arrival-window-ns "
               "(default storm),\n"
               "                     --cache-pages caps the shared cache "
               "(FIFO eviction, 0 =\n"
               "                     unlimited), --fleet-seed drives the "
               "traffic generator\n"
               "profiling:\n"
               "  --profile-mode sampled records periodic samples of the "
               "executing method/CU\n"
               "  on an uninstrumented build (cu+method profiles only; heap "
               "stays\n"
               "  instrumented); --sample-period N sets the model-clock "
               "sampling period\n"
               "fleet aggregation:\n"
               "  --profiles with a comma-separated list (or a single .csv "
               "file) merges the\n"
               "  member profiles (quarantine + fail-open degradation); "
               "--profile-dir DIR\n"
               "  merges every cu*.csv in DIR. A bare directory keeps the "
               "classic meaning:\n"
               "  read {cu,method,cluster,...}.csv from it.\n"
               "pipeline (any command):\n"
               "  --jobs N           worker threads for the parallel build/"
               "post-processing stages\n"
               "                     (default: NIMG_JOBS env, then hardware "
               "concurrency; output is\n"
               "                     byte-identical for any N)\n"
               "huge pages (build, profile):\n"
               "  --huge-pages N     map up to N 2 MiB huge pages at the "
               "front of .text (pure\n"
               "                     page-size overlay: 0 is byte-identical "
               "to omitting the flag).\n"
               "                     The count clamps to the hot prefix; an "
               "unfillable remainder\n"
               "                     records huge_budget_unfillable. In "
               "'profile' the cluster\n"
               "                     solver packs the hottest clusters into "
               "the huge budget.\n"
               "block layout (build):\n"
               "  --blocks exttsp    reorder blocks inside each split CU's "
               "hot fragment by the\n"
               "  ext-TSP objective, driven by DIR/edges.csv (written by "
               "'profile'); needs\n"
               "  --split hotcold. Missing/unusable edge counts keep block "
               "index order.\n"
               "observability (any command):\n"
               "  --metrics          print the metrics registry on exit\n"
               "  --trace-out FILE   write Chrome trace-event JSON spans\n"
               "  --report FILE      write the startup report (JSON, or CSV "
               "for .csv paths)\n");
  return 2;
}

/// Writes \p Report to the --report path if given. Failing to write the
/// report fails the command: silently losing the artifact the user asked
/// for is worse than a nonzero exit.
bool emitReport(obs::StartupReport &Report, int Argc, char **Argv) {
  const char *Path = flagValue(Argc, Argv, "--report");
  if (!Path)
    return true;
  Report.includeMetrics();
  if (!Report.writeFile(Path)) {
    std::fprintf(stderr, "error: cannot write report %s\n", Path);
    return false;
  }
  std::printf("wrote startup report %s\n", Path);
  return true;
}

int cmdProfile(const std::string &Target, int Argc, char **Argv) {
  std::unique_ptr<Program> P = loadTarget(Target);
  if (!P)
    return 1;
  std::string Dir = flagValue(Argc, Argv, "--dir") ? flagValue(Argc, Argv, "--dir") : ".";
  RunConfig Run;
  BuildConfig Cfg;
  Cfg.Seed = 1001;
  if (const char *Gen = flagValue(Argc, Argv, "--generation")) {
    long long G = std::atoll(Gen);
    if (G < 0) {
      std::fprintf(stderr, "error: --generation expects a stamp >= 0 "
                           "(0 = unstamped), got '%s'\n",
                   Gen);
      return 2;
    }
    Cfg.ProfileGeneration = uint64_t(G);
  }
  if (const char *Budget = flagValue(Argc, Argv, "--cluster-budget")) {
    long long B = std::atoll(Budget);
    if (B < 0) {
      std::fprintf(stderr, "error: --cluster-budget expects a byte count "
                           ">= 0 (0 = unlimited), got '%s'\n",
                   Budget);
      return 2;
    }
    Cfg.ClusterPageBudget = uint32_t(B);
  }
  if (!parseHugePages(Argc, Argv, Cfg))
    return 2;
  if (const char *PMode = flagValue(Argc, Argv, "--profile-mode")) {
    if (std::strcmp(PMode, "sampled") == 0) {
      Cfg.ProfileCapture = CaptureKind::Sampled;
    } else if (std::strcmp(PMode, "instrumented") != 0) {
      std::fprintf(stderr, "error: --profile-mode expects "
                           "instrumented|sampled, got '%s'\n",
                   PMode);
      return 2;
    }
  }
  if (const char *Period = flagValue(Argc, Argv, "--sample-period")) {
    long long N = std::atoll(Period);
    if (N <= 0 || uint64_t(N) > TraceOptions::MaxSamplePeriod) {
      std::fprintf(stderr,
                   "error: --sample-period expects 1..%llu, got '%s'\n",
                   (unsigned long long)TraceOptions::MaxSamplePeriod, Period);
      return 2;
    }
    Cfg.SamplePeriod = uint64_t(N);
  }
  CollectedProfiles Prof = collectProfiles(*P, Cfg, Run);
  for (const ProfileIssue &I : Prof.ClusterIssues)
    std::fprintf(stderr, "note: cluster profile: %s (%s)\n", I.Detail.c_str(),
                 profileErrorSlug(I.Kind));

  obs::StartupReport Report;
  Report.Target = Target;
  Report.Command = "profile";
  Report.setJobs(currentJobs());
  Report.addSalvage("cu", Prof.CuSalvage);
  Report.addSalvage("method", Prof.MethodSalvage);
  Report.addSalvage("heap", Prof.HeapSalvage);
  if (Cfg.ProfileCapture == CaptureKind::Sampled) {
    Report.Variant = "profile-mode=sampled period=" +
                     std::to_string(Cfg.SamplePeriod);
    // The sampled run's stats carry the "capture" section (samples taken,
    // events skipped, modeled overhead, coverage estimate).
    Report.setRun(Prof.CuRun);
  }
  if (!emitReport(Report, Argc, Argv))
    return 1;

  bool Ok = writeFile(Dir + "/cu.csv", Prof.Cu.toCsv()) &&
            writeFile(Dir + "/method.csv", Prof.Method.toCsv()) &&
            writeFile(Dir + "/cluster.csv", Prof.Cluster.toCsv()) &&
            writeFile(Dir + "/blocks.csv", Prof.Blocks.toCsv()) &&
            writeFile(Dir + "/edges.csv", Prof.Edges.toCsv()) &&
            writeFile(Dir + "/heap_inc.csv", Prof.IncrementalId.toCsv()) &&
            writeFile(Dir + "/heap_struct.csv", Prof.StructuralHash.toCsv()) &&
            writeFile(Dir + "/heap_path.csv", Prof.HeapPath.toCsv());
  if (!Ok) {
    std::fprintf(stderr, "error: cannot write profiles to %s\n", Dir.c_str());
    return 1;
  }
  std::printf("wrote ordering profiles to %s/{cu,method,cluster,blocks,"
              "edges,heap_inc,heap_struct,heap_path}.csv\n",
              Dir.c_str());
  std::printf("  cu entries: %zu, methods: %zu, heap objects: %zu\n",
              Prof.Cu.Sigs.size(), Prof.Method.Sigs.size(),
              Prof.HeapPath.Ids.size());
  if (Cfg.ProfileCapture == CaptureKind::Sampled)
    std::printf("  sampled capture: %llu sample(s) at period %llu, %llu "
                "event(s) skipped, coverage %u permille\n",
                (unsigned long long)Prof.CuRun.SamplesTaken,
                (unsigned long long)Prof.CuRun.SamplePeriod,
                (unsigned long long)Prof.CuRun.SampleEventsSkipped,
                Prof.CuRun.SampleCoveragePermille);
  std::printf("  cluster: %zu clusters over %zu CUs (%zu merges, %zu "
              "budget rejections)\n",
              Prof.ClusterLayoutStats.Clusters, Prof.ClusterLayoutStats.Nodes,
              Prof.ClusterLayoutStats.Merges,
              Prof.ClusterLayoutStats.BudgetRejections);
  return 0;
}

int cmdBuild(const std::string &Target, int Argc, char **Argv) {
  std::unique_ptr<Program> P = loadTarget(Target);
  if (!P)
    return 1;
  BuildConfig Cfg;
  if (const char *Seed = flagValue(Argc, Argv, "--seed"))
    Cfg.Seed = uint64_t(std::atoll(Seed));
  if (!parseHugePages(Argc, Argv, Cfg))
    return 2;

  // --profiles keeps its classic meaning for a bare directory (read
  // {cu,method,...}.csv from it). A comma-separated list or a single
  // regular file switches to fleet-aggregation mode, as does
  // --profile-dir (merge every cu*.csv inside).
  std::string Dir = ".";
  std::vector<MemberProfile> Members;
  bool MemberMode = false;
  if (const char *MemberDir = flagValue(Argc, Argv, "--profile-dir")) {
    std::vector<std::string> Paths = listMemberProfileDir(MemberDir);
    if (Paths.empty()) {
      std::fprintf(stderr, "error: no cu*.csv member profiles in %s\n",
                   MemberDir);
      return 1;
    }
    Members = loadMemberProfiles(Paths);
    MemberMode = true;
  } else if (const char *Profiles = flagValue(Argc, Argv, "--profiles")) {
    std::string Value = Profiles;
    std::error_code Ec;
    if (Value.find(',') != std::string::npos ||
        std::filesystem::is_regular_file(Value, Ec)) {
      std::vector<std::string> Paths;
      for (size_t At = 0; At <= Value.size();) {
        size_t Comma = Value.find(',', At);
        if (Comma == std::string::npos)
          Comma = Value.size();
        if (Comma > At)
          Paths.push_back(Value.substr(At, Comma - At));
        At = Comma + 1;
      }
      Members = loadMemberProfiles(Paths);
      MemberMode = true;
    } else {
      Dir = Value;
    }
  }

  CodeProfile CodeProf;
  HeapProfile HeapProf;
  const char *Code = flagValue(Argc, Argv, "--code");
  if (MemberMode) {
    // Member sets are cu-order captures; merge feeds the cu (or cluster)
    // code strategy. No --code defaults to cu.
    if (Code && std::strcmp(Code, "method") == 0)
      std::fprintf(stderr,
                   "warning: member profiles are cu-order captures; "
                   "--code method will degrade to the default layout\n");
    Cfg.CodeOrder = !Code || std::strcmp(Code, "cu") == 0
                        ? CodeStrategy::CuOrder
                        : std::strcmp(Code, "cluster") == 0
                              ? CodeStrategy::Cluster
                              : CodeStrategy::MethodOrder;
    Cfg.CodeMembers = &Members;
  } else if (Code) {
    std::string Csv;
    std::string File = Dir + (std::strcmp(Code, "method") == 0
                                  ? "/method.csv"
                                  : std::strcmp(Code, "cluster") == 0
                                        ? "/cluster.csv"
                                        : "/cu.csv");
    if (!readFile(File, Csv)) {
      std::fprintf(stderr, "error: missing profile %s (run 'profile' "
                           "first)\n",
                   File.c_str());
      return 1;
    }
    ProfileReadReport Report;
    CodeProf = CodeProfile::fromCsv(Csv, &Report);
    if (!Report.usable())
      std::fprintf(stderr,
                   "warning: %s is unusable (%s); building with the "
                   "default code layout\n",
                   File.c_str(), profileErrorName(Report.Fatal));
    else if (Report.RowsSkipped > 0)
      std::fprintf(stderr, "warning: %s: skipped %zu malformed row(s)\n",
                   File.c_str(), Report.RowsSkipped);
    Cfg.CodeOrder = std::strcmp(Code, "method") == 0
                        ? CodeStrategy::MethodOrder
                        : std::strcmp(Code, "cluster") == 0
                              ? CodeStrategy::Cluster
                              : CodeStrategy::CuOrder;
    Cfg.CodeProf = &CodeProf;
  }
  if (const char *HeapFlag = flagValue(Argc, Argv, "--heap")) {
    std::string File = Dir;
    if (std::strcmp(HeapFlag, "inc") == 0) {
      Cfg.HeapOrder = HeapStrategy::IncrementalId;
      File += "/heap_inc.csv";
    } else if (std::strcmp(HeapFlag, "struct") == 0) {
      Cfg.HeapOrder = HeapStrategy::StructuralHash;
      File += "/heap_struct.csv";
    } else {
      Cfg.HeapOrder = HeapStrategy::HeapPath;
      File += "/heap_path.csv";
    }
    std::string Csv;
    if (!readFile(File, Csv)) {
      std::fprintf(stderr, "error: missing profile %s (run 'profile' "
                           "first)\n",
                   File.c_str());
      return 1;
    }
    ProfileReadReport Report;
    HeapProf = HeapProfile::fromCsv(Csv, &Report);
    if (!Report.usable())
      std::fprintf(stderr,
                   "warning: %s is unusable (%s); building with the "
                   "default heap layout\n",
                   File.c_str(), profileErrorName(Report.Fatal));
    else if (Report.RowsSkipped > 0)
      std::fprintf(stderr, "warning: %s: skipped %zu malformed row(s)\n",
                   File.c_str(), Report.RowsSkipped);
    Cfg.UseHeapOrder = true;
    Cfg.HeapProf = &HeapProf;
  }
  BlockProfile BlockProf;
  if (const char *Split = flagValue(Argc, Argv, "--split")) {
    if (std::strcmp(Split, "hotcold") == 0) {
      Cfg.Split = SplitMode::HotCold;
      std::string File = Dir + "/blocks.csv";
      std::string Csv;
      if (readFile(File, Csv)) {
        ProfileReadReport Report;
        BlockProf = BlockProfile::fromCsv(Csv, &Report);
        Cfg.BlockProf = &BlockProf;
        if (Report.RowsSkipped > 0)
          std::fprintf(stderr, "warning: %s: skipped %zu malformed row(s)\n",
                       File.c_str(), Report.RowsSkipped);
      } else {
        // A missing block profile is not fatal: the split pass degrades
        // every CU to unsplit and records insufficient_block_profile.
        std::fprintf(stderr,
                     "warning: missing profile %s; building unsplit "
                     "(run 'profile' first)\n",
                     File.c_str());
      }
    } else if (std::strcmp(Split, "none") != 0) {
      std::fprintf(stderr, "error: --split expects none|hotcold, got '%s'\n",
                   Split);
      return 2;
    }
  }
  EdgeProfile EdgeProf;
  if (const char *Blocks = flagValue(Argc, Argv, "--blocks")) {
    if (std::strcmp(Blocks, "exttsp") == 0) {
      if (Cfg.Split != SplitMode::HotCold) {
        std::fprintf(stderr,
                     "error: --blocks exttsp needs --split hotcold (it "
                     "reorders within hot fragments)\n");
        return 2;
      }
      Cfg.SplitOpts.Blocks = BlockOrderMode::ExtTsp;
      std::string File = Dir + "/edges.csv";
      std::string Csv;
      if (readFile(File, Csv)) {
        ProfileReadReport Report;
        EdgeProf = EdgeProfile::fromCsv(Csv, &Report);
        Cfg.EdgeProf = &EdgeProf;
        if (Report.RowsSkipped > 0)
          std::fprintf(stderr, "warning: %s: skipped %zu malformed row(s)\n",
                       File.c_str(), Report.RowsSkipped);
      } else {
        // A missing edge profile is not fatal: hot fragments keep block
        // index order and insufficient_edge_profile is recorded.
        std::fprintf(stderr,
                     "warning: missing profile %s; keeping block index "
                     "order (run 'profile' first)\n",
                     File.c_str());
      }
    } else if (std::strcmp(Blocks, "none") != 0) {
      std::fprintf(stderr, "error: --blocks expects none|exttsp, got '%s'\n",
                   Blocks);
      return 2;
    }
  }

  NativeImage Img = buildNativeImage(*P, Cfg);

  obs::StartupReport Report;
  Report.Target = Target;
  Report.Command = "build";
  Report.setJobs(currentJobs());
  if (const char *CodeFlag = flagValue(Argc, Argv, "--code"))
    Report.Variant += std::string("code=") + CodeFlag;
  else if (MemberMode)
    Report.Variant += "code=cu";
  if (MemberMode)
    Report.Variant += (Report.Variant.empty() ? "" : " ") + std::string("members=") +
                      std::to_string(Members.size());
  if (const char *HeapFlag = flagValue(Argc, Argv, "--heap"))
    Report.Variant +=
        (Report.Variant.empty() ? "" : " ") + std::string("heap=") + HeapFlag;
  if (Cfg.Split == SplitMode::HotCold)
    Report.Variant += (Report.Variant.empty() ? "" : " ") +
                      std::string("split=hotcold");
  if (Cfg.SplitOpts.Blocks == BlockOrderMode::ExtTsp)
    Report.Variant += (Report.Variant.empty() ? "" : " ") +
                      std::string("blocks=exttsp");
  if (Cfg.Image.HugePages > 0)
    Report.Variant += (Report.Variant.empty() ? "" : " ") +
                      std::string("huge-pages=") +
                      std::to_string(Cfg.Image.HugePages);
  Report.setImage(Img);

  if (Img.Built.Failed) {
    // Still emit the report: a degraded/failed pipeline is exactly when
    // the diagnostics artifact matters most.
    emitReport(Report, Argc, Argv);
    std::fprintf(stderr, "build failed: %s\n",
                 Img.Built.FailureMessage.c_str());
    return 1;
  }
  if (!emitReport(Report, Argc, Argv))
    return 1;
  std::printf("built image: %zu CUs, %zu snapshot objects, %llu KiB "
              "(.text %llu KiB + .svm_heap %llu KiB)\n",
              Img.Code.CUs.size(), Img.Snapshot.numStored(),
              (unsigned long long)(Img.imageBytes() / 1024),
              (unsigned long long)(Img.Layout.TextSize / 1024),
              (unsigned long long)(Img.Layout.HeapSize / 1024));
  if (Img.Layout.HugePagesRequested > 0)
    std::printf("  huge pages: %u of %u requested (%llu KiB at 2 MiB "
                "granularity)\n",
                Img.Layout.HugePages, Img.Layout.HugePagesRequested,
                (unsigned long long)(Img.Layout.HugeRegionSize / 1024));
  if (Img.Split.active())
    std::printf("  split: %u CU(s) split, %u degraded, cold tail %llu "
                "bytes (+%llu stub bytes)\n",
                Img.Split.SplitCus, Img.Split.DegradedCus,
                (unsigned long long)Img.Layout.ColdTailSize,
                (unsigned long long)Img.Split.StubBytes);
  if (Img.Split.ExtTsp.Requested) {
    const ExtTspSummary &T = Img.Split.ExtTsp;
    std::printf("  blocks: exttsp reordered %u CU(s), %u degraded, %llu "
                "chain merge(s), score %+.1f%%\n",
                T.ReorderedCus, T.DegradedCus,
                (unsigned long long)T.ChainMerges,
                T.ScoreBefore > 0
                    ? 100.0 * (T.ScoreAfter - T.ScoreBefore) / T.ScoreBefore
                    : 0.0);
  }
  if (Img.ProfileDiag.Merge.attempted()) {
    const MergeManifest &M = Img.ProfileDiag.Merge;
    std::printf("  merge: %s — %zu member(s): %zu accepted, %zu "
                "salvaged, %zu quarantined\n",
                mergeOutcomeName(M.Outcome), M.Members.size(),
                M.countWithStatus(MergeMemberStatus::Accepted),
                M.countWithStatus(MergeMemberStatus::Salvaged),
                M.countWithStatus(MergeMemberStatus::Quarantined));
    for (const MergeMemberReport &R : M.Members)
      if (R.Status == MergeMemberStatus::Quarantined)
        std::fprintf(stderr, "warning: member '%s' quarantined: %s%s%s\n",
                     R.Name.c_str(), profileErrorName(R.Reason),
                     R.Detail.empty() ? "" : " — ",
                     R.Detail.c_str());
  }
  if (Img.ProfileDiag.degraded()) {
    std::fprintf(stderr,
                 "warning: build degraded to default layout(s) — code "
                 "profile %s, heap profile %s\n",
                 Img.ProfileDiag.CodeProfileProvided
                     ? (Img.ProfileDiag.CodeProfileApplied ? "applied"
                                                           : "rejected")
                     : "absent",
                 Img.ProfileDiag.HeapProfileProvided
                     ? (Img.ProfileDiag.HeapProfileApplied ? "applied"
                                                           : "rejected")
                     : "absent");
    for (const ProfileIssue &I : Img.ProfileDiag.Issues)
      std::fprintf(stderr, "  - %s: %s\n", profileErrorName(I.Kind),
                   I.Detail.c_str());
  }
  if (const char *Out = flagValue(Argc, Argv, "--out")) {
    std::vector<uint8_t> Bytes = serializeImage(*P, Img);
    std::string Blob(Bytes.begin(), Bytes.end());
    if (!writeFile(Out, Blob)) {
      std::fprintf(stderr, "error: cannot write %s\n", Out);
      return 1;
    }
    std::printf("wrote %s (%zu bytes)\n", Out, Bytes.size());
  }
  return 0;
}

int cmdRun(const std::string &Target, int Argc, char **Argv) {
  std::unique_ptr<Program> P = loadTarget(Target);
  if (!P)
    return 1;
  NativeImage Img;
  if (const char *File = flagValue(Argc, Argv, "--image")) {
    std::string Blob;
    if (!readFile(File, Blob)) {
      std::fprintf(stderr, "error: cannot read %s\n", File);
      return 1;
    }
    std::vector<uint8_t> Bytes(Blob.begin(), Blob.end());
    std::string Error;
    if (!deserializeImage(*P, Bytes, Img, Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
  } else {
    BuildConfig Cfg;
    Img = buildNativeImage(*P, Cfg);
  }
  RunConfig Run;
  Run.ColdCache = !hasFlag(Argc, Argv, "--warm");

  if (const char *Fleet = flagValue(Argc, Argv, "--fleet")) {
    long long N = std::atoll(Fleet);
    if (N <= 0) {
      std::fprintf(stderr,
                   "error: --fleet expects an instance count >= 1, got "
                   "'%s'\n",
                   Fleet);
      return 2;
    }
    FleetConfig FC;
    FC.Instances = uint32_t(N);
    if (const char *Arrivals = flagValue(Argc, Argv, "--arrivals")) {
      if (!parseArrivalKind(Arrivals, FC.Arrivals)) {
        std::fprintf(stderr,
                     "error: --arrivals expects uniform|poisson|storm, got "
                     "'%s'\n",
                     Arrivals);
        return 2;
      }
    }
    if (const char *Window = flagValue(Argc, Argv, "--arrival-window-ns")) {
      double W = std::atof(Window);
      if (W < 0) {
        std::fprintf(stderr,
                     "error: --arrival-window-ns expects a window >= 0, got "
                     "'%s'\n",
                     Window);
        return 2;
      }
      FC.ArrivalWindowNs = W;
    }
    if (const char *Seed = flagValue(Argc, Argv, "--fleet-seed"))
      FC.Seed = std::strtoull(Seed, nullptr, 10);
    if (const char *Bursts = flagValue(Argc, Argv, "--storm-bursts")) {
      long long B = std::atoll(Bursts);
      if (B <= 0) {
        std::fprintf(stderr,
                     "error: --storm-bursts expects a burst count >= 1, got "
                     "'%s'\n",
                     Bursts);
        return 2;
      }
      FC.StormBursts = uint32_t(B);
    }
    if (const char *Cache = flagValue(Argc, Argv, "--cache-pages")) {
      long long C = std::atoll(Cache);
      if (C < 0) {
        std::fprintf(stderr,
                     "error: --cache-pages expects a page count >= 0 "
                     "(0 = unlimited), got '%s'\n",
                     Cache);
        return 2;
      }
      FC.CachePages = uint64_t(C);
    }

    RunStats Ref;
    FleetResult FR = runFleet(Img, Run, FC, &Ref);
    std::fputs(Ref.Output.c_str(), stdout);

    obs::StartupReport Report;
    Report.Target = Target;
    Report.Command = "run";
    Report.setJobs(currentJobs());
    Report.Variant = std::string("fleet=") + std::to_string(FC.Instances) +
                     " arrivals=" + arrivalKindName(FC.Arrivals);
    Report.setRun(Ref);
    Report.setImage(Img);
    Report.setFleet(FR, FC);
    if (!emitReport(Report, Argc, Argv))
      return 1;

    if (Ref.Trapped) {
      std::fprintf(stderr, "trap: %s\n", Ref.TrapMessage.c_str());
      return 1;
    }
    std::printf("[fleet] %u instance(s), %s arrivals over %.2f ms, cache "
                "%llu page(s)%s\n",
                FC.Instances, arrivalKindName(FC.Arrivals),
                FC.ArrivalWindowNs / 1e6,
                (unsigned long long)FC.CachePages,
                FC.CachePages == 0 ? " (unlimited)" : "");
    std::printf("[fleet] cold start p50 %.2f ms, p90 %.2f ms, p99 %.2f ms, "
                "mean %.2f ms (single run %.2f ms)\n",
                FR.P50Ns / 1e6, FR.P90Ns / 1e6, FR.P99Ns / 1e6,
                FR.MeanNs / 1e6, FR.ReferenceTimeNs / 1e6);
    std::printf("[fleet] %llu major fault(s) over %llu unique page(s), "
                "%llu warm hit(s) (%.1f%% warm), %llu eviction(s)\n",
                (unsigned long long)FR.TotalMajors,
                (unsigned long long)FR.UniquePages,
                (unsigned long long)FR.TotalWarmHits,
                FR.warmHitRatio() * 100.0,
                (unsigned long long)FR.Evictions);
    return 0;
  }

  RunStats S = runImage(Img, Run);
  std::fputs(S.Output.c_str(), stdout);

  obs::StartupReport Report;
  Report.Target = Target;
  Report.Command = "run";
  Report.setJobs(currentJobs());
  Report.Variant = Run.ColdCache ? "cold-cache" : "warm-cache";
  Report.setRun(S);
  Report.setImage(Img);
  if (!emitReport(Report, Argc, Argv))
    return 1;

  if (S.Trapped) {
    std::fprintf(stderr, "trap: %s\n", S.TrapMessage.c_str());
    return 1;
  }
  std::printf("[%s cache] %llu text + %llu heap faults, %.2f ms (model), "
              "%llu instructions\n",
              Run.ColdCache ? "cold" : "warm",
              (unsigned long long)S.TextFaults,
              (unsigned long long)S.HeapFaults, S.TimeNs / 1e6,
              (unsigned long long)S.Instructions);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  std::string Cmd = Argv[1];
  std::string Target = Argv[2];

  if (const char *Jobs = flagValue(Argc, Argv, "--jobs")) {
    int N = std::atoi(Jobs);
    if (N <= 0) {
      std::fprintf(stderr, "error: --jobs expects a positive integer, got "
                           "'%s'\n",
                   Jobs);
      return 2;
    }
    setJobs(N);
  }

  const char *TraceOut = flagValue(Argc, Argv, "--trace-out");
  if (TraceOut)
    obs::SpanTracer::global().setEnabled(true);

  int Rc = 2;
  if (Cmd == "profile")
    Rc = cmdProfile(Target, Argc, Argv);
  else if (Cmd == "build")
    Rc = cmdBuild(Target, Argc, Argv);
  else if (Cmd == "run")
    Rc = cmdRun(Target, Argc, Argv);
  else
    return usage();

  if (TraceOut) {
    if (!obs::SpanTracer::global().writeFile(TraceOut)) {
      std::fprintf(stderr, "error: cannot write trace %s\n", TraceOut);
      if (Rc == 0)
        Rc = 1;
    } else {
      std::printf("wrote %zu trace event(s) to %s (load in Perfetto / "
                  "chrome://tracing)\n",
                  obs::SpanTracer::global().eventCount(), TraceOut);
    }
  }
  if (hasFlag(Argc, Argv, "--metrics"))
    std::fputs(obs::MetricsRegistry::global().toText().c_str(), stdout);
  return Rc;
}
