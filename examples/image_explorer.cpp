//===- image_explorer.cpp - Inspecting a built image ------------------------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// Inspects what the build pipeline produced for a workload: section sizes,
// the first compilation units in .text, the heap snapshot broken down by
// inclusion reason (Sec. 5.3's five kinds), the largest object types, and
// the identity ids of a few snapshot objects under all three strategies.
//
//===----------------------------------------------------------------------===//

#include "src/core/Builder.h"
#include "src/workloads/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

using namespace nimg;

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "Richards";
  BenchmarkSpec Spec = awfyBenchmark(Name);
  std::vector<std::string> Errors;
  std::unique_ptr<Program> P = compileBenchmark(Spec, Errors);
  if (!P) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "error: %s\n", E.c_str());
    return 1;
  }

  BuildConfig Cfg;
  Cfg.Seed = 11;
  NativeImage Img = buildNativeImage(*P, Cfg);

  std::printf("image of AWFY '%s'\n", Name.c_str());
  std::printf("  .text:     %8llu KiB (%zu compilation units + %llu KiB "
              "native tail)\n",
              (unsigned long long)(Img.Layout.TextSize / 1024),
              Img.Code.CUs.size(),
              (unsigned long long)(Img.Layout.NativeTailSize / 1024));
  std::printf("  .svm_heap: %8llu KiB (%zu stored objects, %zu elided by "
              "the PEA-style pass)\n\n",
              (unsigned long long)(Img.Layout.HeapSize / 1024),
              Img.Snapshot.numStored(),
              Img.Snapshot.Entries.size() - Img.Snapshot.numStored());

  std::printf("first CUs in .text (default order is alphabetical by root "
              "signature):\n");
  for (size_t I = 0; I < 8 && I < Img.Layout.CuOrder.size(); ++I) {
    const CompilationUnit &CU =
        Img.Code.CUs[size_t(Img.Layout.CuOrder[I])];
    std::printf("  +%06llu %5u B  %s (%zu inlined copies)\n",
                (unsigned long long)
                    Img.Layout.CuOffsets[size_t(Img.Layout.CuOrder[I])],
                CU.CodeSize, P->method(CU.Root).Sig.c_str(),
                CU.Copies.size() - 1);
  }

  // Snapshot breakdown by inclusion reason (of roots) and by type.
  std::map<std::string, std::pair<size_t, uint64_t>> ByReason;
  std::map<std::string, std::pair<size_t, uint64_t>> ByType;
  const Heap &H = *Img.Built.BuildHeap;
  for (const SnapshotEntry &E : Img.Snapshot.Entries) {
    if (E.Elided)
      continue;
    if (E.IsRoot) {
      std::string Key;
      switch (E.Reason.Kind) {
      case InclusionReasonKind::StaticField:
        Key = "StaticField";
        break;
      case InclusionReasonKind::Method:
        Key = "Method";
        break;
      case InclusionReasonKind::InternedString:
        Key = "InternedString";
        break;
      case InclusionReasonKind::DataSection:
        Key = "DataSection";
        break;
      case InclusionReasonKind::Resource:
        Key = "Resource";
        break;
      }
      ByReason[Key].first++;
      ByReason[Key].second += E.SizeBytes;
    }
    auto &T = ByType[H.cellTypeName(E.Cell)];
    T.first++;
    T.second += E.SizeBytes;
  }

  std::printf("\nheap roots by inclusion reason (Sec. 5.3):\n");
  for (const auto &[Key, V] : ByReason)
    std::printf("  %-16s %6zu roots, %8llu bytes\n", Key.c_str(), V.first,
                (unsigned long long)V.second);

  std::printf("\nlargest snapshot types:\n");
  std::vector<std::pair<std::string, std::pair<size_t, uint64_t>>> Types(
      ByType.begin(), ByType.end());
  std::sort(Types.begin(), Types.end(), [](const auto &A, const auto &B) {
    return A.second.second > B.second.second;
  });
  for (size_t I = 0; I < 8 && I < Types.size(); ++I)
    std::printf("  %-24s %6zu objects, %8llu bytes\n",
                Types[I].first.c_str(), Types[I].second.first,
                (unsigned long long)Types[I].second.second);

  std::printf("\nidentity ids of the first stored objects (Sec. 5):\n");
  std::printf("  %-20s %18s %18s %18s\n", "type", "incremental",
              "structural", "heap path");
  size_t Shown = 0;
  for (size_t I = 0; I < Img.Snapshot.Entries.size() && Shown < 6; ++I) {
    if (Img.Snapshot.Entries[I].Elided)
      continue;
    std::printf("  %-20s %018llx %018llx %018llx\n",
                H.cellTypeName(Img.Snapshot.Entries[I].Cell).c_str(),
                (unsigned long long)Img.Ids.IncrementalIds[I],
                (unsigned long long)Img.Ids.StructuralHashes[I],
                (unsigned long long)Img.Ids.HeapPathHashes[I]);
    ++Shown;
  }
  return 0;
}
