//===- quickstart.cpp - nimage in ~60 lines ---------------------------------===//
//
// Part of the nimage project, a reproduction of "Improving Native-Image
// Startup Performance" (CGO 2025).
//
// Quickstart: compile a MiniJava program, build a baseline image, collect
// ordering profiles from an instrumented image, build a profile-guided
// image with the paper's best strategy (cu + heap path), and compare
// cold-start page faults and modeled startup time.
//
//===----------------------------------------------------------------------===//

#include "src/core/Builder.h"
#include "src/lang/Compile.h"
#include "src/workloads/Workloads.h"

#include <cstdio>

using namespace nimg;

static const char *kProgram = R"MJ(
class Greeter {
  static String greeting = "Hello from the image heap!";
  String decorate(String who) { return greeting + " (to: " + who + ")"; }
}
class Main {
  static int main() {
    Runtime.initialize(); // the (generated) runtime library's startup path
    Greeter g = new Greeter();
    Sys.print(g.decorate("quickstart"));
    int sum = 0;
    for (int i = 0; i < 100; i = i + 1) { sum = sum + i * i; }
    return sum;
  }
}
)MJ";

int main() {
  // 1. Compile MiniJava source to a Program (the "classpath"): the som
  //    core library, the generated runtime library (whose startup path and
  //    cold code make layout matter), and our application.
  Program P;
  std::vector<std::string> Errors;
  if (!compileSources({somLibrarySource(), runtimePreludeSource(), kProgram},
                      P, Errors)) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "error: %s\n", E.c_str());
    return 1;
  }

  // 2. Baseline image: reachability -> inline/CUs -> run static
  //    initializers -> heap snapshot -> layout.
  BuildConfig Base;
  Base.Seed = 1;
  NativeImage Baseline = buildNativeImage(P, Base);
  std::printf("baseline image: %zu CUs, %zu snapshot objects, %llu KiB\n",
              Baseline.Code.CUs.size(), Baseline.Snapshot.numStored(),
              (unsigned long long)(Baseline.imageBytes() / 1024));

  // 3. Profile: build an instrumented image, run it three times (cu /
  //    method / heap tracing), post-process traces into ordering profiles.
  RunConfig Run;
  BuildConfig InstrCfg;
  InstrCfg.Seed = 1001;
  CollectedProfiles Prof = collectProfiles(P, InstrCfg, Run);
  std::printf("profiles: %zu CUs, %zu methods, %zu heap objects\n",
              Prof.Cu.Sigs.size(), Prof.Method.Sigs.size(),
              Prof.HeapPath.Ids.size());

  // 4. Optimizing build consuming the profiles (cu + heap path, the
  //    paper's best combination).
  BuildConfig Opt;
  Opt.Seed = 2;
  Opt.CodeOrder = CodeStrategy::CuOrder;
  Opt.CodeProf = &Prof.Cu;
  Opt.UseHeapOrder = true;
  Opt.HeapOrder = HeapStrategy::HeapPath;
  Opt.HeapProf = &Prof.HeapPath;
  NativeImage Optimized = buildNativeImage(P, Opt);

  // 5. Cold-start both images and compare.
  RunStats B = runImage(Baseline, Run);
  RunStats O = runImage(Optimized, Run);
  std::printf("\nprogram output:\n%s\n", O.Output.c_str());
  std::printf("cold start   %-10s %-10s\n", "baseline", "optimized");
  std::printf(".text faults  %-10llu %-10llu\n",
              (unsigned long long)B.TextFaults,
              (unsigned long long)O.TextFaults);
  std::printf(".heap faults  %-10llu %-10llu\n",
              (unsigned long long)B.HeapFaults,
              (unsigned long long)O.HeapFaults);
  std::printf("time (model)  %-10.2f %-10.2f ms  => speedup %.2fx\n",
              B.TimeNs / 1e6, O.TimeNs / 1e6, B.TimeNs / O.TimeNs);
  return 0;
}
