# Empty compiler generated dependencies file for microservice_startup.
# This may be replaced when dependencies are built.
