file(REMOVE_RECURSE
  "CMakeFiles/microservice_startup.dir/microservice_startup.cpp.o"
  "CMakeFiles/microservice_startup.dir/microservice_startup.cpp.o.d"
  "microservice_startup"
  "microservice_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microservice_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
