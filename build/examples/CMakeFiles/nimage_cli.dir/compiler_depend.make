# Empty compiler generated dependencies file for nimage_cli.
# This may be replaced when dependencies are built.
