file(REMOVE_RECURSE
  "CMakeFiles/nimage_cli.dir/nimage_cli.cpp.o"
  "CMakeFiles/nimage_cli.dir/nimage_cli.cpp.o.d"
  "nimage_cli"
  "nimage_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimage_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
