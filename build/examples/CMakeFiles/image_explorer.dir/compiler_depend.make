# Empty compiler generated dependencies file for image_explorer.
# This may be replaced when dependencies are built.
