file(REMOVE_RECURSE
  "CMakeFiles/image_explorer.dir/image_explorer.cpp.o"
  "CMakeFiles/image_explorer.dir/image_explorer.cpp.o.d"
  "image_explorer"
  "image_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
