file(REMOVE_RECURSE
  "CMakeFiles/faas_cold_start.dir/faas_cold_start.cpp.o"
  "CMakeFiles/faas_cold_start.dir/faas_cold_start.cpp.o.d"
  "faas_cold_start"
  "faas_cold_start.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faas_cold_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
