# Empty dependencies file for faas_cold_start.
# This may be replaced when dependencies are built.
