# Empty dependencies file for fig2_awfy_pagefaults.
# This may be replaced when dependencies are built.
