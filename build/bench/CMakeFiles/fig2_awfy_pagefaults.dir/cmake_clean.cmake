file(REMOVE_RECURSE
  "CMakeFiles/fig2_awfy_pagefaults.dir/fig2_awfy_pagefaults.cpp.o"
  "CMakeFiles/fig2_awfy_pagefaults.dir/fig2_awfy_pagefaults.cpp.o.d"
  "fig2_awfy_pagefaults"
  "fig2_awfy_pagefaults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_awfy_pagefaults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
