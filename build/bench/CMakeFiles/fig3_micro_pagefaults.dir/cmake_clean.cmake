file(REMOVE_RECURSE
  "CMakeFiles/fig3_micro_pagefaults.dir/fig3_micro_pagefaults.cpp.o"
  "CMakeFiles/fig3_micro_pagefaults.dir/fig3_micro_pagefaults.cpp.o.d"
  "fig3_micro_pagefaults"
  "fig3_micro_pagefaults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_micro_pagefaults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
