# Empty dependencies file for fig3_micro_pagefaults.
# This may be replaced when dependencies are built.
