file(REMOVE_RECURSE
  "CMakeFiles/abl_readahead.dir/abl_readahead.cpp.o"
  "CMakeFiles/abl_readahead.dir/abl_readahead.cpp.o.d"
  "abl_readahead"
  "abl_readahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_readahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
