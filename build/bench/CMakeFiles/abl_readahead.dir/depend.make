# Empty dependencies file for abl_readahead.
# This may be replaced when dependencies are built.
