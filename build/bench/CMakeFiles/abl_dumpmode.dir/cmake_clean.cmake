file(REMOVE_RECURSE
  "CMakeFiles/abl_dumpmode.dir/abl_dumpmode.cpp.o"
  "CMakeFiles/abl_dumpmode.dir/abl_dumpmode.cpp.o.d"
  "abl_dumpmode"
  "abl_dumpmode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dumpmode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
