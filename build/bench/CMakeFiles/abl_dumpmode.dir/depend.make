# Empty dependencies file for abl_dumpmode.
# This may be replaced when dependencies are built.
