# Empty dependencies file for abl_maxdepth.
# This may be replaced when dependencies are built.
