file(REMOVE_RECURSE
  "CMakeFiles/abl_maxdepth.dir/abl_maxdepth.cpp.o"
  "CMakeFiles/abl_maxdepth.dir/abl_maxdepth.cpp.o.d"
  "abl_maxdepth"
  "abl_maxdepth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_maxdepth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
