file(REMOVE_RECURSE
  "CMakeFiles/fig6_text_visualization.dir/fig6_text_visualization.cpp.o"
  "CMakeFiles/fig6_text_visualization.dir/fig6_text_visualization.cpp.o.d"
  "fig6_text_visualization"
  "fig6_text_visualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_text_visualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
