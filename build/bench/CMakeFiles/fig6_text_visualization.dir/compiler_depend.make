# Empty compiler generated dependencies file for fig6_text_visualization.
# This may be replaced when dependencies are built.
