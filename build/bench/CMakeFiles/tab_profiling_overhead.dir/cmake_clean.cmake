file(REMOVE_RECURSE
  "CMakeFiles/tab_profiling_overhead.dir/tab_profiling_overhead.cpp.o"
  "CMakeFiles/tab_profiling_overhead.dir/tab_profiling_overhead.cpp.o.d"
  "tab_profiling_overhead"
  "tab_profiling_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_profiling_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
