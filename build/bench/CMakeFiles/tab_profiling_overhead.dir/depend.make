# Empty dependencies file for tab_profiling_overhead.
# This may be replaced when dependencies are built.
