
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/CodeSize.cpp" "src/CMakeFiles/nimage.dir/compiler/CodeSize.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/compiler/CodeSize.cpp.o.d"
  "/root/repo/src/compiler/Inliner.cpp" "src/CMakeFiles/nimage.dir/compiler/Inliner.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/compiler/Inliner.cpp.o.d"
  "/root/repo/src/compiler/Reachability.cpp" "src/CMakeFiles/nimage.dir/compiler/Reachability.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/compiler/Reachability.cpp.o.d"
  "/root/repo/src/core/Builder.cpp" "src/CMakeFiles/nimage.dir/core/Builder.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/core/Builder.cpp.o.d"
  "/root/repo/src/core/Evaluation.cpp" "src/CMakeFiles/nimage.dir/core/Evaluation.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/core/Evaluation.cpp.o.d"
  "/root/repo/src/heap/BuildHeap.cpp" "src/CMakeFiles/nimage.dir/heap/BuildHeap.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/heap/BuildHeap.cpp.o.d"
  "/root/repo/src/heap/Heap.cpp" "src/CMakeFiles/nimage.dir/heap/Heap.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/heap/Heap.cpp.o.d"
  "/root/repo/src/heap/Snapshot.cpp" "src/CMakeFiles/nimage.dir/heap/Snapshot.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/heap/Snapshot.cpp.o.d"
  "/root/repo/src/image/ImageFile.cpp" "src/CMakeFiles/nimage.dir/image/ImageFile.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/image/ImageFile.cpp.o.d"
  "/root/repo/src/image/ImageLayout.cpp" "src/CMakeFiles/nimage.dir/image/ImageLayout.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/image/ImageLayout.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/CMakeFiles/nimage.dir/ir/Printer.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/ir/Printer.cpp.o.d"
  "/root/repo/src/ir/Program.cpp" "src/CMakeFiles/nimage.dir/ir/Program.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/ir/Program.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/CMakeFiles/nimage.dir/ir/Verifier.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/ir/Verifier.cpp.o.d"
  "/root/repo/src/lang/Compile.cpp" "src/CMakeFiles/nimage.dir/lang/Compile.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/lang/Compile.cpp.o.d"
  "/root/repo/src/lang/Lexer.cpp" "src/CMakeFiles/nimage.dir/lang/Lexer.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/lang/Lexer.cpp.o.d"
  "/root/repo/src/lang/Parser.cpp" "src/CMakeFiles/nimage.dir/lang/Parser.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/lang/Parser.cpp.o.d"
  "/root/repo/src/ordering/IdStrategies.cpp" "src/CMakeFiles/nimage.dir/ordering/IdStrategies.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/ordering/IdStrategies.cpp.o.d"
  "/root/repo/src/ordering/Orderers.cpp" "src/CMakeFiles/nimage.dir/ordering/Orderers.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/ordering/Orderers.cpp.o.d"
  "/root/repo/src/profiling/Analyses.cpp" "src/CMakeFiles/nimage.dir/profiling/Analyses.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/profiling/Analyses.cpp.o.d"
  "/root/repo/src/profiling/PathGraph.cpp" "src/CMakeFiles/nimage.dir/profiling/PathGraph.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/profiling/PathGraph.cpp.o.d"
  "/root/repo/src/runtime/ExecEngine.cpp" "src/CMakeFiles/nimage.dir/runtime/ExecEngine.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/runtime/ExecEngine.cpp.o.d"
  "/root/repo/src/runtime/Interpreter.cpp" "src/CMakeFiles/nimage.dir/runtime/Interpreter.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/runtime/Interpreter.cpp.o.d"
  "/root/repo/src/runtime/Paging.cpp" "src/CMakeFiles/nimage.dir/runtime/Paging.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/runtime/Paging.cpp.o.d"
  "/root/repo/src/support/Csv.cpp" "src/CMakeFiles/nimage.dir/support/Csv.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/support/Csv.cpp.o.d"
  "/root/repo/src/support/Murmur3.cpp" "src/CMakeFiles/nimage.dir/support/Murmur3.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/support/Murmur3.cpp.o.d"
  "/root/repo/src/workloads/AwfyMacro1.cpp" "src/CMakeFiles/nimage.dir/workloads/AwfyMacro1.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/workloads/AwfyMacro1.cpp.o.d"
  "/root/repo/src/workloads/AwfyMacro2.cpp" "src/CMakeFiles/nimage.dir/workloads/AwfyMacro2.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/workloads/AwfyMacro2.cpp.o.d"
  "/root/repo/src/workloads/AwfyMicro.cpp" "src/CMakeFiles/nimage.dir/workloads/AwfyMicro.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/workloads/AwfyMicro.cpp.o.d"
  "/root/repo/src/workloads/Microservices.cpp" "src/CMakeFiles/nimage.dir/workloads/Microservices.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/workloads/Microservices.cpp.o.d"
  "/root/repo/src/workloads/Prelude.cpp" "src/CMakeFiles/nimage.dir/workloads/Prelude.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/workloads/Prelude.cpp.o.d"
  "/root/repo/src/workloads/SomLib.cpp" "src/CMakeFiles/nimage.dir/workloads/SomLib.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/workloads/SomLib.cpp.o.d"
  "/root/repo/src/workloads/Workloads.cpp" "src/CMakeFiles/nimage.dir/workloads/Workloads.cpp.o" "gcc" "src/CMakeFiles/nimage.dir/workloads/Workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
