file(REMOVE_RECURSE
  "libnimage.a"
)
