# Empty compiler generated dependencies file for nimage.
# This may be replaced when dependencies are built.
