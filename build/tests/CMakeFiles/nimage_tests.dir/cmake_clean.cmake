file(REMOVE_RECURSE
  "CMakeFiles/nimage_tests.dir/AnalysesTest.cpp.o"
  "CMakeFiles/nimage_tests.dir/AnalysesTest.cpp.o.d"
  "CMakeFiles/nimage_tests.dir/EngineTest.cpp.o"
  "CMakeFiles/nimage_tests.dir/EngineTest.cpp.o.d"
  "CMakeFiles/nimage_tests.dir/FrontendTest.cpp.o"
  "CMakeFiles/nimage_tests.dir/FrontendTest.cpp.o.d"
  "CMakeFiles/nimage_tests.dir/IdStrategiesTest.cpp.o"
  "CMakeFiles/nimage_tests.dir/IdStrategiesTest.cpp.o.d"
  "CMakeFiles/nimage_tests.dir/ImageFileTest.cpp.o"
  "CMakeFiles/nimage_tests.dir/ImageFileTest.cpp.o.d"
  "CMakeFiles/nimage_tests.dir/InterpreterTest.cpp.o"
  "CMakeFiles/nimage_tests.dir/InterpreterTest.cpp.o.d"
  "CMakeFiles/nimage_tests.dir/OrderersTest.cpp.o"
  "CMakeFiles/nimage_tests.dir/OrderersTest.cpp.o.d"
  "CMakeFiles/nimage_tests.dir/PagingTest.cpp.o"
  "CMakeFiles/nimage_tests.dir/PagingTest.cpp.o.d"
  "CMakeFiles/nimage_tests.dir/PathGraphTest.cpp.o"
  "CMakeFiles/nimage_tests.dir/PathGraphTest.cpp.o.d"
  "CMakeFiles/nimage_tests.dir/PipelineTest.cpp.o"
  "CMakeFiles/nimage_tests.dir/PipelineTest.cpp.o.d"
  "CMakeFiles/nimage_tests.dir/SupportTest.cpp.o"
  "CMakeFiles/nimage_tests.dir/SupportTest.cpp.o.d"
  "CMakeFiles/nimage_tests.dir/TraceTest.cpp.o"
  "CMakeFiles/nimage_tests.dir/TraceTest.cpp.o.d"
  "CMakeFiles/nimage_tests.dir/VerifierTest.cpp.o"
  "CMakeFiles/nimage_tests.dir/VerifierTest.cpp.o.d"
  "CMakeFiles/nimage_tests.dir/WorkloadsTest.cpp.o"
  "CMakeFiles/nimage_tests.dir/WorkloadsTest.cpp.o.d"
  "nimage_tests"
  "nimage_tests.pdb"
  "nimage_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nimage_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
