# Empty dependencies file for nimage_tests.
# This may be replaced when dependencies are built.
