
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AnalysesTest.cpp" "tests/CMakeFiles/nimage_tests.dir/AnalysesTest.cpp.o" "gcc" "tests/CMakeFiles/nimage_tests.dir/AnalysesTest.cpp.o.d"
  "/root/repo/tests/EngineTest.cpp" "tests/CMakeFiles/nimage_tests.dir/EngineTest.cpp.o" "gcc" "tests/CMakeFiles/nimage_tests.dir/EngineTest.cpp.o.d"
  "/root/repo/tests/FrontendTest.cpp" "tests/CMakeFiles/nimage_tests.dir/FrontendTest.cpp.o" "gcc" "tests/CMakeFiles/nimage_tests.dir/FrontendTest.cpp.o.d"
  "/root/repo/tests/IdStrategiesTest.cpp" "tests/CMakeFiles/nimage_tests.dir/IdStrategiesTest.cpp.o" "gcc" "tests/CMakeFiles/nimage_tests.dir/IdStrategiesTest.cpp.o.d"
  "/root/repo/tests/ImageFileTest.cpp" "tests/CMakeFiles/nimage_tests.dir/ImageFileTest.cpp.o" "gcc" "tests/CMakeFiles/nimage_tests.dir/ImageFileTest.cpp.o.d"
  "/root/repo/tests/InterpreterTest.cpp" "tests/CMakeFiles/nimage_tests.dir/InterpreterTest.cpp.o" "gcc" "tests/CMakeFiles/nimage_tests.dir/InterpreterTest.cpp.o.d"
  "/root/repo/tests/OrderersTest.cpp" "tests/CMakeFiles/nimage_tests.dir/OrderersTest.cpp.o" "gcc" "tests/CMakeFiles/nimage_tests.dir/OrderersTest.cpp.o.d"
  "/root/repo/tests/PagingTest.cpp" "tests/CMakeFiles/nimage_tests.dir/PagingTest.cpp.o" "gcc" "tests/CMakeFiles/nimage_tests.dir/PagingTest.cpp.o.d"
  "/root/repo/tests/PathGraphTest.cpp" "tests/CMakeFiles/nimage_tests.dir/PathGraphTest.cpp.o" "gcc" "tests/CMakeFiles/nimage_tests.dir/PathGraphTest.cpp.o.d"
  "/root/repo/tests/PipelineTest.cpp" "tests/CMakeFiles/nimage_tests.dir/PipelineTest.cpp.o" "gcc" "tests/CMakeFiles/nimage_tests.dir/PipelineTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/nimage_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/nimage_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/TraceTest.cpp" "tests/CMakeFiles/nimage_tests.dir/TraceTest.cpp.o" "gcc" "tests/CMakeFiles/nimage_tests.dir/TraceTest.cpp.o.d"
  "/root/repo/tests/VerifierTest.cpp" "tests/CMakeFiles/nimage_tests.dir/VerifierTest.cpp.o" "gcc" "tests/CMakeFiles/nimage_tests.dir/VerifierTest.cpp.o.d"
  "/root/repo/tests/WorkloadsTest.cpp" "tests/CMakeFiles/nimage_tests.dir/WorkloadsTest.cpp.o" "gcc" "tests/CMakeFiles/nimage_tests.dir/WorkloadsTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nimage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
