//===- IdStrategiesTest.cpp - Alg. 1-3 identity-strategy tests --------------===//

#include "src/core/Builder.h"
#include "src/lang/Compile.h"
#include "src/ordering/IdStrategies.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

using namespace nimg;

namespace {

/// A small program with enough heap-snapshot variety for the strategies:
/// strings, arrays, linked objects, and class metadata.
struct SnapFixture {
  Program P;
  NativeImage Img;

  SnapFixture(uint64_t Seed = 5) {
    std::vector<std::string> Errors;
    bool Ok = compileSources(
        {"class Node { int k; Node next;\n"
         "  Node(int k, Node next) { this.k = k; this.next = next; } }\n"
         "class Registry {\n"
         "  static String name = \"registry\";\n"
         "  static String[] labels = new String[3];\n"
         "  static Node chain = new Node(1, new Node(2, new Node(3, null)));\n"
         "  static int[] codes = new int[5];\n"
         "  static {\n"
         "    for (int i = 0; i < 3; i = i + 1) {"
         "      labels[i] = name + \"-\" + i; }\n"
         "    for (int i = 0; i < 5; i = i + 1) { codes[i] = i * i; }\n"
         "  }\n"
         "}\n"
         "class Main { static int main() {\n"
         "  return Str.length(Registry.name) + Registry.codes[2]; } }"},
        P, Errors);
    EXPECT_TRUE(Ok);
    for (auto &E : Errors)
      ADD_FAILURE() << E;
    BuildConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.EnablePea = false; // keep all objects for exact comparisons
    Img = buildNativeImage(P, Cfg);
  }
};

} // namespace

TEST(IncrementalId, HighBitsAreTheTypeLowBitsCount) {
  SnapFixture F;
  const Heap &H = *F.Img.Built.BuildHeap;
  std::unordered_map<uint32_t, uint32_t> MaxCounter;
  std::unordered_map<uint32_t, std::string> TypeOf;
  for (size_t I = 0; I < F.Img.Snapshot.Entries.size(); ++I) {
    uint64_t Id = F.Img.Ids.IncrementalIds[I];
    ASSERT_NE(Id, 0u);
    uint32_t Type = uint32_t(Id >> 32);
    uint32_t Counter = uint32_t(Id);
    auto [It, Inserted] =
        TypeOf.emplace(Type, H.cellTypeName(F.Img.Snapshot.Entries[I].Cell));
    if (!Inserted)
      EXPECT_EQ(It->second, H.cellTypeName(F.Img.Snapshot.Entries[I].Cell))
          << "type-id collision";
    // Counters are dense, per type, in encounter order.
    EXPECT_EQ(Counter, MaxCounter[Type] + 1);
    MaxCounter[Type] = Counter;
  }
}

TEST(IncrementalId, UniquePerSnapshot) {
  SnapFixture F;
  std::set<uint64_t> Seen(F.Img.Ids.IncrementalIds.begin(),
                          F.Img.Ids.IncrementalIds.end());
  EXPECT_EQ(Seen.size(), F.Img.Ids.IncrementalIds.size());
}

TEST(StructuralHash, DeterministicAndContentSensitive) {
  SnapFixture F;
  Heap &H = *F.Img.Built.BuildHeap;
  // Find the chain head (a Node whose next is a Node).
  ClassId NodeC = F.P.findClass("Node");
  CellIdx Head = -1;
  for (const SnapshotEntry &E : F.Img.Snapshot.Entries) {
    const HeapCell &C = H.cell(E.Cell);
    if (C.Kind == CellKind::Object && C.Class == NodeC &&
        C.Slots[0].asInt() == 1) {
      Head = E.Cell;
      break;
    }
  }
  ASSERT_NE(Head, -1);
  uint64_t H1 = structuralHashOf(F.P, H, Head, 2);
  EXPECT_EQ(H1, structuralHashOf(F.P, H, Head, 2));
  // Mutating a primitive field changes the hash.
  H.cell(Head).Slots[0] = Value::makeInt(99);
  EXPECT_NE(H1, structuralHashOf(F.P, H, Head, 2));
}

TEST(StructuralHash, DepthGatesNeighbourSensitivity) {
  SnapFixture F;
  Heap &H = *F.Img.Built.BuildHeap;
  ClassId NodeC = F.P.findClass("Node");
  CellIdx Head = -1;
  for (const SnapshotEntry &E : F.Img.Snapshot.Entries) {
    const HeapCell &C = H.cell(E.Cell);
    if (C.Kind == CellKind::Object && C.Class == NodeC &&
        C.Slots[0].asInt() == 1)
      Head = E.Cell;
  }
  ASSERT_NE(Head, -1);
  uint64_t Shallow = structuralHashOf(F.P, H, Head, 0);
  uint64_t Deep = structuralHashOf(F.P, H, Head, 3);
  // Mutate the SECOND node's key: invisible at depth 0, visible at 3.
  CellIdx Second = H.cell(Head).Slots[1].asRef();
  H.cell(Second).Slots[0] = Value::makeInt(42);
  EXPECT_EQ(Shallow, structuralHashOf(F.P, H, Head, 0));
  EXPECT_NE(Deep, structuralHashOf(F.P, H, Head, 3));
}

TEST(StructuralHash, StringsHashTheirContents) {
  SnapFixture A(1), B(2); // different build seeds
  // Find "registry" in both snapshots: same content => same hash.
  auto FindString = [](SnapFixture &F, const std::string &S) -> uint64_t {
    Heap &H = *F.Img.Built.BuildHeap;
    for (size_t I = 0; I < F.Img.Snapshot.Entries.size(); ++I) {
      const HeapCell &C = H.cell(F.Img.Snapshot.Entries[I].Cell);
      if (C.Kind == CellKind::String && C.Str == S)
        return F.Img.Ids.StructuralHashes[I];
    }
    return 0;
  };
  uint64_t HA = FindString(A, "registry-1");
  uint64_t HB = FindString(B, "registry-1");
  ASSERT_NE(HA, 0u);
  EXPECT_EQ(HA, HB) << "same content must hash equally across builds";
}

TEST(HeapPath, StableAcrossSeedsForStaticRoots) {
  SnapFixture A(1), B(2);
  // Per-object heap-path ids of statics-rooted objects agree across
  // builds: the path (root static field, field descriptors, indices) is
  // structural, not order-dependent.
  auto PathIdsOf = [](SnapFixture &F) {
    std::set<uint64_t> Out;
    for (size_t I = 0; I < F.Img.Snapshot.Entries.size(); ++I)
      Out.insert(F.Img.Ids.HeapPathHashes[I]);
    return Out;
  };
  std::set<uint64_t> SA = PathIdsOf(A), SB = PathIdsOf(B);
  // Count the overlap: everything except class metadata (whose initSeq
  // does not enter the path hash) should agree -> near-total overlap.
  size_t Common = 0;
  for (uint64_t Id : SA)
    Common += SB.count(Id);
  EXPECT_GT(Common * 10, SA.size() * 9)
      << "heap-path ids should be largely stable across builds";
}

TEST(HeapPath, InternedStringRootsHashContents) {
  // Two interned strings with different contents must differ even though
  // their "path" (the intern table) is the same — Alg. 3 lines 4-5.
  SnapFixture F;
  Heap &H = *F.Img.Built.BuildHeap;
  std::vector<uint64_t> StringRootHashes;
  for (size_t I = 0; I < F.Img.Snapshot.Entries.size(); ++I) {
    const SnapshotEntry &E = F.Img.Snapshot.Entries[I];
    if (E.IsRoot && E.Reason.Kind == InclusionReasonKind::InternedString)
      StringRootHashes.push_back(F.Img.Ids.HeapPathHashes[I]);
  }
  std::set<uint64_t> Unique(StringRootHashes.begin(), StringRootHashes.end());
  EXPECT_EQ(Unique.size(), StringRootHashes.size());
  (void)H;
}

TEST(IdTable, ElidedEntriesGetZeroIds) {
  Program P;
  std::vector<std::string> Errors;
  ASSERT_TRUE(compileSources(
      {"class Box { int v; String tag;\n"
       "  Box(int v, String tag) { this.v = v; this.tag = tag; } }\n"
       "class R { static Box[] boxes = new Box[40];\n"
       "  static { for (int i = 0; i < boxes.length; i = i + 1) {\n"
       "    boxes[i] = new Box(i, \"box\" + i); } } }\n"
       "class Main { static int main() { return R.boxes.length; } }"},
      P, Errors));
  BuildConfig Cfg;
  Cfg.Seed = 3;
  Cfg.EnablePea = true;
  Cfg.PeaRate = 2; // elide aggressively so some Box goes away
  NativeImage Img = buildNativeImage(P, Cfg);
  size_t Elided = 0;
  for (size_t I = 0; I < Img.Snapshot.Entries.size(); ++I) {
    if (Img.Snapshot.Entries[I].Elided) {
      ++Elided;
      EXPECT_EQ(Img.Ids.IncrementalIds[I], 0u);
      EXPECT_EQ(Img.Ids.StructuralHashes[I], 0u);
      EXPECT_EQ(Img.Ids.HeapPathHashes[I], 0u);
    }
  }
  EXPECT_GT(Elided, 0u) << "PEA elided nothing at rate 2";
}
