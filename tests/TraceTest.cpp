//===- TraceTest.cpp - Trace records, writer, and dump-mode tests -----------===//

#include "src/profiling/Trace.h"

#include <gtest/gtest.h>

using namespace nimg;

TEST(TraceRecords, PathRecordRoundTrips) {
  uint64_t W = tracerec::makePath(MethodId(12345), 999);
  EXPECT_TRUE(tracerec::isPath(W));
  EXPECT_FALSE(tracerec::isCuEnter(W));
  EXPECT_EQ(tracerec::pathId(W), 999u);
  EXPECT_EQ(tracerec::pathMethod(W), 12345);
}

TEST(TraceRecords, CuEnterRoundTrips) {
  uint64_t W = tracerec::makeCuEnter(MethodId(777));
  EXPECT_TRUE(tracerec::isCuEnter(W));
  EXPECT_FALSE(tracerec::isPath(W));
  EXPECT_EQ(tracerec::cuRoot(W), 777);
}

TEST(TraceRecords, MaxPathIdFits) {
  uint64_t MaxPath = (1u << 20) - 1;
  uint64_t W = tracerec::makePath(MethodId(1) << 20, MaxPath);
  EXPECT_EQ(tracerec::pathId(W), MaxPath);
  EXPECT_EQ(tracerec::pathMethod(W), MethodId(1) << 20);
}

namespace {

TraceOptions opts(DumpMode Mode, uint32_t BufferWords = 8) {
  TraceOptions O;
  O.Mode = TraceMode::HeapOrder;
  O.Dump = Mode;
  O.BufferWords = BufferWords;
  return O;
}

} // namespace

TEST(TraceWriter, FlushOnFullKeepsFlushedPrefixOnKill) {
  TraceWriter W(opts(DumpMode::FlushOnFull, /*BufferWords=*/4));
  for (uint64_t I = 0; I < 10; ++I)
    W.append(0, I); // flushes at 4 and 8; 2 words pending
  W.killAll();      // SIGKILL: pending words are lost
  TraceCapture C = W.take();
  ASSERT_EQ(C.Threads.size(), 1u);
  EXPECT_EQ(C.Threads[0].Words.size(), 8u);
  EXPECT_EQ(C.Threads[0].Words[7], 7u);
}

TEST(TraceWriter, FlushOnFullKeepsEverythingOnCleanExit) {
  TraceWriter W(opts(DumpMode::FlushOnFull, 4));
  for (uint64_t I = 0; I < 10; ++I)
    W.append(0, I);
  W.flushAll(); // clean termination handlers ran
  TraceCapture C = W.take();
  EXPECT_EQ(C.Threads[0].Words.size(), 10u);
}

TEST(TraceWriter, MemoryMappedSurvivesKill) {
  TraceWriter W(opts(DumpMode::MemoryMapped, 4));
  for (uint64_t I = 0; I < 10; ++I)
    W.append(0, I);
  W.killAll(); // nothing to lose: every word was written through
  TraceCapture C = W.take();
  EXPECT_EQ(C.Threads[0].Words.size(), 10u);
}

TEST(TraceWriter, MemoryMappedCostsMorePerWord) {
  TraceWriter A(opts(DumpMode::FlushOnFull, 1024));
  TraceWriter B(opts(DumpMode::MemoryMapped, 1024));
  for (uint64_t I = 0; I < 100; ++I) {
    A.append(0, I);
    B.append(0, I);
  }
  EXPECT_GT(B.probeUnits(), A.probeUnits());
}

TEST(TraceWriter, ThreadsAreKeptInCreationOrder) {
  TraceWriter W(opts(DumpMode::MemoryMapped));
  W.append(2, 22); // threads 0 and 1 implicitly exist, empty
  W.append(0, 0);
  W.append(1, 11);
  TraceCapture C = W.take();
  ASSERT_EQ(C.Threads.size(), 3u);
  EXPECT_EQ(C.Threads[0].Words, std::vector<uint64_t>{0});
  EXPECT_EQ(C.Threads[1].Words, std::vector<uint64_t>{11});
  EXPECT_EQ(C.Threads[2].Words, std::vector<uint64_t>{22});
}

TEST(TraceWriter, TakeResetsState) {
  TraceWriter W(opts(DumpMode::MemoryMapped));
  W.append(0, 1);
  TraceCapture C1 = W.take();
  EXPECT_EQ(C1.totalWords(), 1u);
  TraceCapture C2 = W.take();
  EXPECT_EQ(C2.totalWords(), 0u);
}
