//===- TraceTest.cpp - Trace records, writer, and dump-mode tests -----------===//

#include "src/profiling/Trace.h"

#include <gtest/gtest.h>

using namespace nimg;

TEST(TraceRecords, PathRecordRoundTrips) {
  uint64_t W = tracerec::makePath(MethodId(12345), 999);
  EXPECT_TRUE(tracerec::isPath(W));
  EXPECT_FALSE(tracerec::isCuEnter(W));
  EXPECT_EQ(tracerec::pathId(W), 999u);
  EXPECT_EQ(tracerec::pathMethod(W), 12345);
}

TEST(TraceRecords, CuEnterRoundTrips) {
  uint64_t W = tracerec::makeCuEnter(MethodId(777));
  EXPECT_TRUE(tracerec::isCuEnter(W));
  EXPECT_FALSE(tracerec::isPath(W));
  EXPECT_EQ(tracerec::cuRoot(W), 777);
}

TEST(TraceRecords, MaxPathIdFits) {
  uint64_t MaxPath = (1u << 20) - 1;
  uint64_t W = tracerec::makePath(MethodId(1) << 20, MaxPath);
  EXPECT_EQ(tracerec::pathId(W), MaxPath);
  EXPECT_EQ(tracerec::pathMethod(W), MethodId(1) << 20);
}

namespace {

TraceOptions opts(DumpMode Mode, uint32_t BufferWords = 8) {
  TraceOptions O;
  O.Mode = TraceMode::HeapOrder;
  O.Dump = Mode;
  O.BufferWords = BufferWords;
  return O;
}

} // namespace

TEST(TraceWriter, FlushOnFullKeepsFlushedPrefixOnKill) {
  TraceWriter W(opts(DumpMode::FlushOnFull, /*BufferWords=*/4));
  for (uint64_t I = 0; I < 10; ++I)
    W.append(0, I); // flushes at 4 and 8; 2 words pending
  W.killAll();      // SIGKILL: pending words are lost
  TraceCapture C = W.take();
  ASSERT_EQ(C.Threads.size(), 1u);
  EXPECT_EQ(C.Threads[0].Words.size(), 8u);
  EXPECT_EQ(C.Threads[0].Words[7], 7u);
}

TEST(TraceWriter, FlushOnFullKeepsEverythingOnCleanExit) {
  TraceWriter W(opts(DumpMode::FlushOnFull, 4));
  for (uint64_t I = 0; I < 10; ++I)
    W.append(0, I);
  W.flushAll(); // clean termination handlers ran
  TraceCapture C = W.take();
  EXPECT_EQ(C.Threads[0].Words.size(), 10u);
}

TEST(TraceWriter, MemoryMappedSurvivesKill) {
  TraceWriter W(opts(DumpMode::MemoryMapped, 4));
  for (uint64_t I = 0; I < 10; ++I)
    W.append(0, I);
  W.killAll(); // nothing to lose: every word was written through
  TraceCapture C = W.take();
  EXPECT_EQ(C.Threads[0].Words.size(), 10u);
}

TEST(TraceWriter, MemoryMappedCostsMorePerWord) {
  TraceWriter A(opts(DumpMode::FlushOnFull, 1024));
  TraceWriter B(opts(DumpMode::MemoryMapped, 1024));
  for (uint64_t I = 0; I < 100; ++I) {
    A.append(0, I);
    B.append(0, I);
  }
  EXPECT_GT(B.probeUnits(), A.probeUnits());
}

TEST(TraceWriter, ThreadsAreKeptInCreationOrder) {
  TraceWriter W(opts(DumpMode::MemoryMapped));
  W.append(2, 22); // threads 0 and 1 implicitly exist, empty
  W.append(0, 0);
  W.append(1, 11);
  TraceCapture C = W.take();
  ASSERT_EQ(C.Threads.size(), 3u);
  EXPECT_EQ(C.Threads[0].Words, std::vector<uint64_t>{0});
  EXPECT_EQ(C.Threads[1].Words, std::vector<uint64_t>{11});
  EXPECT_EQ(C.Threads[2].Words, std::vector<uint64_t>{22});
}

TEST(TraceWriter, TakeResetsState) {
  TraceWriter W(opts(DumpMode::MemoryMapped));
  W.append(0, 1);
  TraceCapture C1 = W.take();
  EXPECT_EQ(C1.totalWords(), 1u);
  TraceCapture C2 = W.take();
  EXPECT_EQ(C2.totalWords(), 0u);
}

namespace {

TraceOptions varintOpts(DumpMode Mode, uint32_t BufferWords = 8) {
  TraceOptions O = opts(Mode, BufferWords);
  O.Encoding = TraceEncoding::VarintDelta;
  return O;
}

/// A delta-friendly word stream shaped like a real path trace: runs of
/// path records for one method (small deltas) with occasional jumps to a
/// different method (large deltas) and interleaved operand words.
std::vector<uint64_t> pathLikeWords() {
  std::vector<uint64_t> W;
  for (uint64_t M : {7u, 7u, 7u, 9000u, 9000u, 7u})
    for (uint64_t P = 0; P < 4; ++P) {
      W.push_back(tracerec::makePath(MethodId(M), P));
      W.push_back(P % 2); // operand word
    }
  return W;
}

} // namespace

TEST(TraceVarint, MemoryMappedRoundTripsWordStream) {
  std::vector<uint64_t> In = pathLikeWords();
  TraceWriter W(varintOpts(DumpMode::MemoryMapped));
  for (uint64_t Word : In)
    W.append(0, Word);
  TraceCapture C = W.take();
  ASSERT_EQ(C.Threads.size(), 1u);
  EXPECT_TRUE(C.Threads[0].Encoded);
  EXPECT_EQ(C.Threads[0].numWords(), In.size());
  std::vector<uint64_t> Out;
  EXPECT_TRUE(C.Threads[0].decodeWords(Out));
  EXPECT_EQ(Out, In);
  // The point of the encoding: strictly fewer persisted bytes than raw.
  EXPECT_LT(C.totalBytes(), In.size() * 8);
}

TEST(TraceVarint, DeltaChainContinuesAcrossFlushes) {
  // One encoder state per thread, like an appended-to trace file: a dump
  // split over many flushes must decode identically to a single flush.
  std::vector<uint64_t> In = pathLikeWords();
  TraceWriter Split(varintOpts(DumpMode::FlushOnFull, /*BufferWords=*/3));
  TraceWriter Whole(varintOpts(DumpMode::FlushOnFull, /*BufferWords=*/1024));
  for (uint64_t Word : In) {
    Split.append(0, Word);
    Whole.append(0, Word);
  }
  Split.flushAll();
  Whole.flushAll();
  TraceCapture A = Split.take(), B = Whole.take();
  EXPECT_EQ(A.Threads[0].Bytes, B.Threads[0].Bytes);
  std::vector<uint64_t> Out;
  EXPECT_TRUE(A.Threads[0].decodeWords(Out));
  EXPECT_EQ(Out, In);
}

TEST(TraceVarint, KillKeepsFlushedPrefixDecodable) {
  TraceWriter W(varintOpts(DumpMode::FlushOnFull, /*BufferWords=*/5));
  std::vector<uint64_t> In = pathLikeWords();
  ASSERT_NE(In.size() % 5, 0u); // ensure an unflushed tail exists
  for (uint64_t Word : In)
    W.append(0, Word);
  W.killAll(); // pending tail lost; flushed varint stream stays aligned
  TraceCapture C = W.take();
  size_t Kept = C.Threads[0].numWords();
  EXPECT_EQ(Kept, (In.size() / 5) * 5);
  std::vector<uint64_t> Out;
  EXPECT_TRUE(C.Threads[0].decodeWords(Out));
  EXPECT_EQ(Out, std::vector<uint64_t>(In.begin(), In.begin() + Kept));
}

TEST(TraceVarint, TruncatedMidVarintDecodesLongestPrefix) {
  // A kill can cut an mmap-backed encoded dump mid-varint; the decoder
  // must keep the words before the cut and report the truncation.
  TraceWriter W(varintOpts(DumpMode::MemoryMapped));
  W.append(0, 5);
  W.append(0, tracerec::makePath(MethodId(123456), 7)); // multi-byte delta
  TraceCapture C = W.take();
  ThreadTrace T = C.Threads[0];
  ASSERT_GT(T.Bytes.size(), 2u);
  T.Bytes.pop_back(); // sever the last varint
  std::vector<uint64_t> Out;
  EXPECT_FALSE(T.decodeWords(Out));
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], 5u);
}

TEST(TraceVarint, MmapEncodingCostScalesWithEmittedBytes) {
  // Sec. 6.1 trade-off, encoded flavor: small deltas make the modeled
  // mmap write cost cheaper than raw 8-byte words.
  TraceWriter Raw(opts(DumpMode::MemoryMapped, 1024));
  TraceWriter Enc(varintOpts(DumpMode::MemoryMapped, 1024));
  for (uint64_t W : pathLikeWords()) {
    Raw.append(0, W);
    Enc.append(0, W);
  }
  EXPECT_LT(Enc.probeUnits(), Raw.probeUnits());
}
