//===- SplitterTest.cpp - Hot/cold CU splitting tests -----------------------===//

#include "src/compiler/Splitter.h"

#include "src/ir/IrBuilder.h"

#include <gtest/gtest.h>

using namespace nimg;

namespace {

BlockProfile prof(std::vector<BlockProfile::Row> Rows) {
  BlockProfile P;
  P.Rows = std::move(Rows);
  return P;
}

/// One static method with a diamond CFG:
///   b0 (entry, 32B incl. prologue) -> b1 (12B) | b2 (ColdConsts*8+4 B)
///   b1, b2 -> b3 (8B, ret)
/// With ColdConsts = 5, b2 is 44 bytes: above both the default glue
/// threshold and MinColdBytes on its own.
struct DiamondFixture {
  Program P;
  MethodId Main = -1;
  CompiledProgram CP;

  explicit DiamondFixture(int ColdConsts = 5) {
    ClassId C = P.addClass("T");
    Main = P.addMethod(C, "diamond", {}, P.intType(), /*IsStatic=*/true);
    IrBuilder B(P, Main);
    BlockId B1 = B.newBlock(), B2 = B.newBlock(), B3 = B.newBlock();
    B.br(B.constBool(true), B1, B2);
    B.setBlock(B1);
    uint16_t V = B.constInt(1);
    B.jmp(B3);
    B.setBlock(B2);
    for (int I = 0; I < ColdConsts; ++I)
      B.constInt(I);
    B.jmp(B3);
    B.setBlock(B3);
    B.ret(V);
    P.MainMethod = Main;
    ReachabilityResult Reach = analyzeReachability(P);
    CP = buildCompilationUnits(P, Reach, InlinerConfig(), false);
  }

  /// Profile marking exactly \p HotBlocks of the diamond as executed.
  BlockProfile profile(std::initializer_list<uint32_t> HotBlocks) {
    std::vector<BlockProfile::Row> Rows;
    for (uint32_t B : HotBlocks)
      Rows.push_back({"T.diamond()", B, 1});
    return prof(std::move(Rows));
  }

  const CuSplit &mainCu(const SplitResult &R) const {
    return R.PerCu[size_t(CP.CuOfMethod[size_t(Main)])];
  }
};

} // namespace

TEST(Splitter, NullProfileDegradesWholeProgram) {
  DiamondFixture F;
  SplitResult R = splitCompiledProgram(F.P, F.CP, nullptr);
  EXPECT_TRUE(R.active());
  EXPECT_EQ(R.SplitCus, 0u);
  EXPECT_EQ(R.DegradedCus, uint32_t(F.CP.CUs.size()));
  ASSERT_EQ(R.Issues.size(), 1u);
  EXPECT_EQ(R.Issues[0].Kind, ProfileError::InsufficientBlockProfile);
  // Every CU stays whole: all bytes hot, none cold, no stubs.
  EXPECT_EQ(R.HotBytes, F.CP.totalCodeSize());
  EXPECT_EQ(R.ColdBytes, 0u);
  EXPECT_EQ(R.StubBytes, 0u);
  for (size_t I = 0; I < R.PerCu.size(); ++I) {
    EXPECT_FALSE(R.PerCu[I].Split);
    EXPECT_EQ(R.PerCu[I].HotSize, F.CP.CUs[I].CodeSize);
  }
}

TEST(Splitter, UnusableProfileDegradesWithSlugDetail) {
  DiamondFixture F;
  BlockProfile Bad = F.profile({0, 1, 2, 3});
  Bad.LoadError = ProfileError::ChecksumMismatch;
  SplitResult R = splitCompiledProgram(F.P, F.CP, &Bad);
  EXPECT_EQ(R.SplitCus, 0u);
  EXPECT_EQ(R.DegradedCus, uint32_t(F.CP.CUs.size()));
  ASSERT_EQ(R.Issues.size(), 1u);
  EXPECT_NE(R.Issues[0].Detail.find(
                profileErrorSlug(ProfileError::ChecksumMismatch)),
            std::string::npos);
}

TEST(Splitter, LowSalvageCoverageDegrades) {
  DiamondFixture F;
  BlockProfile Thin = F.profile({0, 1, 3});
  Thin.CoveragePermille = 500; // below the default 900 threshold
  SplitResult R = splitCompiledProgram(F.P, F.CP, &Thin);
  EXPECT_EQ(R.SplitCus, 0u);
  EXPECT_EQ(R.DegradedCus, uint32_t(F.CP.CUs.size()));

  // An explicitly lowered threshold accepts the same profile.
  SplitOptions Lax;
  Lax.MinCoveragePermille = 400;
  SplitResult R2 = splitCompiledProgram(F.P, F.CP, &Thin, Lax);
  EXPECT_EQ(R2.DegradedCus, 0u);
  EXPECT_EQ(R2.SplitCus, 1u);
}

TEST(Splitter, ColdBlockExiledWithStubAccounting) {
  DiamondFixture F;
  BlockProfile Prof = F.profile({0, 1, 3}); // b2 never executed
  SplitResult R = splitCompiledProgram(F.P, F.CP, &Prof);
  const CuSplit &S = F.mainCu(R);
  ASSERT_TRUE(S.Split);
  EXPECT_EQ(R.SplitCus, 1u);
  EXPECT_EQ(R.DegradedCus, 0u);

  ASSERT_EQ(S.Copies.size(), 1u);
  const CopySplit &CS = S.Copies[0];
  ASSERT_EQ(CS.Blocks.size(), 4u);
  EXPECT_FALSE(CS.Blocks[0].Cold);
  EXPECT_FALSE(CS.Blocks[1].Cold);
  EXPECT_TRUE(CS.Blocks[2].Cold);
  EXPECT_FALSE(CS.Blocks[3].Cold);

  // Exactly two CFG edges cross the boundary (b0->b2 hot-side, b2->b3
  // cold-side), one stub each.
  SplitOptions Defaults;
  EXPECT_EQ(S.StubBytes, 2 * Defaults.StubBytes);
  // Fragment bytes: hot = b0(32) + b1(12) + b3(8) + one stub; cold =
  // b2(44) + one stub.
  EXPECT_EQ(S.HotSize, 52u + Defaults.StubBytes);
  EXPECT_EQ(S.ColdSize, 44u + Defaults.StubBytes);
  // The size invariant: every byte of the CU lands in exactly one
  // fragment, plus the stubs.
  const CompilationUnit &CU = F.CP.CUs[size_t(F.CP.CuOfMethod[size_t(F.Main)])];
  EXPECT_EQ(uint64_t(S.HotSize) + S.ColdSize,
            uint64_t(CU.CodeSize) + S.StubBytes);
  // Hot blocks keep their relative order; offsets address the fragments.
  EXPECT_EQ(CS.Blocks[0].Offset, 0u);
  EXPECT_EQ(CS.Blocks[1].Offset, 32u);
  EXPECT_EQ(CS.Blocks[3].Offset, 44u);
  EXPECT_EQ(CS.Blocks[2].Offset, 0u); // first cold byte
}

TEST(Splitter, TinyColdBlockStaysHotAsGlue) {
  // b2 is a lone jmp (4 bytes): exiling it would spend more stub bytes
  // than it saves, so the glue rule keeps it hot and the CU stays whole.
  DiamondFixture F(/*ColdConsts=*/0);
  BlockProfile Prof = F.profile({0, 1, 3});
  SplitResult R = splitCompiledProgram(F.P, F.CP, &Prof);
  EXPECT_FALSE(F.mainCu(R).Split);
  EXPECT_EQ(R.DegradedCus, 0u); // a non-split decision is not a failure
  EXPECT_TRUE(R.Issues.empty());

  // With glue disabled (and the cold-size gate lowered to match), the
  // same profile does split the block out — the glue rule is what held
  // it back.
  SplitOptions NoGlue;
  NoGlue.GlueMaxBytes = 0;
  NoGlue.MinColdBytes = 1;
  SplitResult R2 = splitCompiledProgram(F.P, F.CP, &Prof, NoGlue);
  ASSERT_TRUE(F.mainCu(R2).Split);
  EXPECT_TRUE(F.mainCu(R2).Copies[0].Blocks[2].Cold);
}

TEST(Splitter, MinColdBytesGateKeepsCuWhole) {
  DiamondFixture F;
  BlockProfile Prof = F.profile({0, 1, 3});
  SplitOptions Strict;
  Strict.MinColdBytes = 1000; // the 44 cold bytes are not worth it
  SplitResult R = splitCompiledProgram(F.P, F.CP, &Prof, Strict);
  EXPECT_FALSE(F.mainCu(R).Split);
  EXPECT_EQ(R.DegradedCus, 0u);
  EXPECT_TRUE(R.Issues.empty());
}

TEST(Splitter, ColdRootEntryBlockDegradesPerCu) {
  // Execution evidence without a hot entry block means the profile
  // under-reports: this CU degrades individually, others are unaffected.
  DiamondFixture F;
  BlockProfile Prof = F.profile({1, 3}); // entry b0 claimed cold
  SplitResult R = splitCompiledProgram(F.P, F.CP, &Prof);
  EXPECT_FALSE(F.mainCu(R).Split);
  EXPECT_EQ(R.SplitCus, 0u);
  EXPECT_EQ(R.DegradedCus, 1u);
  ASSERT_EQ(R.Issues.size(), 1u);
  EXPECT_EQ(R.Issues[0].Kind, ProfileError::InsufficientBlockProfile);
  EXPECT_NE(R.Issues[0].Detail.find("cold root entry block"),
            std::string::npos);
}

TEST(Splitter, FingerprintDeterministicAndDecisionSensitive) {
  DiamondFixture F;
  BlockProfile A = F.profile({0, 1, 3});
  SplitResult R1 = splitCompiledProgram(F.P, F.CP, &A);
  SplitResult R2 = splitCompiledProgram(F.P, F.CP, &A);
  // Pure function of the merged profile: byte-identical re-runs.
  EXPECT_EQ(R1.DecisionFingerprint, R2.DecisionFingerprint);

  // A different decision (all-hot: nothing splits) must move it.
  BlockProfile B = F.profile({0, 1, 2, 3});
  SplitResult R3 = splitCompiledProgram(F.P, F.CP, &B);
  EXPECT_EQ(R3.SplitCus, 0u);
  EXPECT_NE(R1.DecisionFingerprint, R3.DecisionFingerprint);

  // Degraded (unsplit-everywhere) agrees with all-hot only by accident of
  // both being "no CU split"; it must still differ from the split result.
  SplitResult R4 = splitCompiledProgram(F.P, F.CP, nullptr);
  EXPECT_NE(R1.DecisionFingerprint, R4.DecisionFingerprint);
}

namespace {

/// An inline tree for the reachability rule: main's diamond calls `cc` on
/// both arms; `cc` calls leaf `dd`. All bodies are trivially inlinable, so
/// main's CU carries two full cc->dd subtrees.
struct InlineFixture {
  Program P;
  MethodId Main = -1, Cc = -1, Dd = -1;
  CompiledProgram CP;

  InlineFixture() {
    ClassId C = P.addClass("T");
    Dd = P.addMethod(C, "dd", {}, P.intType(), true);
    {
      IrBuilder B(P, Dd);
      B.ret(B.constInt(7));
    }
    Cc = P.addMethod(C, "cc", {}, P.intType(), true);
    {
      IrBuilder B(P, Cc);
      B.ret(B.callStatic(Dd, {}));
    }
    Main = P.addMethod(C, "aa", {}, P.intType(), true);
    IrBuilder B(P, Main);
    BlockId B1 = B.newBlock(), B2 = B.newBlock(), B3 = B.newBlock();
    B.br(B.constBool(true), B1, B2);
    B.setBlock(B1);
    uint16_t V = B.callStatic(Cc, {});
    B.jmp(B3);
    B.setBlock(B2);
    B.callStatic(Cc, {});
    B.jmp(B3);
    B.setBlock(B3);
    B.ret(V);
    P.MainMethod = Main;
    ReachabilityResult Reach = analyzeReachability(P);
    CP = buildCompilationUnits(P, Reach, InlinerConfig(), false);
  }
};

} // namespace

TEST(Splitter, ReachabilityExilesNeverEnteredInlineCopies) {
  InlineFixture F;
  const CompilationUnit &CU = F.CP.CUs[size_t(F.CP.CuOfMethod[size_t(F.Main)])];
  ASSERT_EQ(CU.Copies.size(), 5u) << "expected both cc->dd subtrees inlined";

  // The profile says: the b1 arm ran, the b2 arm did not — but cc and dd
  // executed (through b1), so per-signature counts alone would keep the
  // b2 copies hot.
  BlockProfile Prof = prof({{"T.aa()", 0, 1},
                            {"T.aa()", 1, 1},
                            {"T.aa()", 3, 1},
                            {"T.cc()", 0, 2},
                            {"T.dd()", 0, 2}});
  SplitResult R = splitCompiledProgram(F.P, F.CP, &Prof);
  const CuSplit &S = R.PerCu[size_t(F.CP.CuOfMethod[size_t(F.Main)])];
  ASSERT_TRUE(S.Split);
  ASSERT_EQ(S.Copies.size(), 5u);

  // Locate the two cc copies by their call-site block in the root copy.
  int32_t HotCc = -1, ColdCc = -1;
  for (size_t C = 1; C < CU.Copies.size(); ++C) {
    if (CU.Copies[C].ParentCopy != 0)
      continue;
    if ((CU.Copies[C].SiteId >> 16) == 1)
      HotCc = int32_t(C);
    if ((CU.Copies[C].SiteId >> 16) == 2)
      ColdCc = int32_t(C);
  }
  ASSERT_GE(HotCc, 0);
  ASSERT_GE(ColdCc, 0);

  auto AllCold = [&](int32_t Copy) {
    for (const BlockPlace &B : S.Copies[size_t(Copy)].Blocks)
      if (!B.Cold)
        return false;
    return true;
  };
  // The copy reached through the executed arm keeps its hot blocks.
  EXPECT_FALSE(AllCold(HotCc));
  // The copy at the never-executed call site is exiled wholesale...
  EXPECT_TRUE(AllCold(ColdCc));
  // ...and so is its child dd copy (recursive propagation down the tree),
  // while the dd copy under the hot cc stays hot.
  for (size_t C = 1; C < CU.Copies.size(); ++C) {
    if (CU.Copies[C].ParentCopy == ColdCc) {
      EXPECT_TRUE(AllCold(int32_t(C)));
    }
    if (CU.Copies[C].ParentCopy == HotCc) {
      EXPECT_FALSE(AllCold(int32_t(C)));
    }
  }
  // The size invariant holds with multiple copies and stub charging.
  EXPECT_EQ(uint64_t(S.HotSize) + S.ColdSize,
            uint64_t(CU.CodeSize) + S.StubBytes);
}
