//===- PathGraphTest.cpp - Ball-Larus path numbering tests ------------------===//

#include "src/ir/IrBuilder.h"
#include "src/profiling/PathGraph.h"

#include <gtest/gtest.h>

#include <set>

using namespace nimg;

namespace {

/// Builds a static int method with the given body-builder callback.
template <typename Fn> MethodId makeMethod(Program &P, Fn Body) {
  ClassId C = P.findClass("T") != -1 ? P.findClass("T") : P.addClass("T");
  MethodId M = P.addMethod(C, "m" + std::to_string(P.numMethods()), {},
                           P.intType(), /*IsStatic=*/true);
  IrBuilder B(P, M);
  Body(B);
  return M;
}

} // namespace

TEST(PathGraph, StraightLineHasOnePath) {
  Program P;
  MethodId M = makeMethod(P, [](IrBuilder &B) {
    uint16_t R = B.constInt(1);
    B.ret(R);
  });
  auto G = PathGraph::build(P, M);
  EXPECT_EQ(G->numPaths(), 1u);
  PathEvents E = G->decode(0);
  EXPECT_TRUE(E.MethodEntry);
  EXPECT_EQ(E.OperandCount, 0u);
}

TEST(PathGraph, DiamondHasTwoPaths) {
  Program P;
  MethodId M = makeMethod(P, [](IrBuilder &B) {
    uint16_t C = B.constBool(true);
    BlockId T = B.newBlock(), F = B.newBlock();
    B.br(C, T, F);
    B.setBlock(T);
    B.ret(B.constInt(1));
    B.setBlock(F);
    B.ret(B.constInt(2));
  });
  auto G = PathGraph::build(P, M);
  EXPECT_EQ(G->numPaths(), 2u);
  // Both ids decode as method-entry paths with distinct... identical events
  // (no access sites), but both must be method entries.
  EXPECT_TRUE(G->decode(0).MethodEntry);
  EXPECT_TRUE(G->decode(1).MethodEntry);
}

TEST(PathGraph, AccessSitesAppearOnTheRightPaths) {
  Program P;
  ClassId C = P.addClass("Box");
  P.classDef(C).InstanceFields.push_back({"v", P.intType(), C, false});
  MethodId M = makeMethod(P, [&](IrBuilder &B) {
    uint16_t Obj = B.newObject(C);
    uint16_t Cond = B.constBool(true);
    BlockId T = B.newBlock(), F = B.newBlock();
    B.br(Cond, T, F);
    B.setBlock(T);
    uint16_t V = B.getField(Obj, 0); // access site on the true path
    B.ret(V);
    B.setBlock(F);
    B.ret(B.constInt(0));
  });
  auto G = PathGraph::build(P, M);
  ASSERT_EQ(G->numPaths(), 2u);
  int WithAccess = 0, WithoutAccess = 0;
  for (uint64_t Id = 0; Id < 2; ++Id) {
    PathEvents E = G->decode(Id);
    if (E.OperandCount == 1)
      ++WithAccess;
    else if (E.OperandCount == 0)
      ++WithoutAccess;
  }
  EXPECT_EQ(WithAccess, 1);
  EXPECT_EQ(WithoutAccess, 1);
}

TEST(PathGraph, LoopBackEdgeIsCut) {
  // while-style loop: entry -> cond -> (body -> cond | exit).
  Program P;
  MethodId M = makeMethod(P, [](IrBuilder &B) {
    uint16_t I = B.constInt(0);
    BlockId Cond = B.newBlock(), Body = B.newBlock(), Exit = B.newBlock();
    B.jmp(Cond);
    B.setBlock(Cond);
    uint16_t Ten = B.constInt(10);
    uint16_t Lt = B.binop(Opcode::CmpLt, I, Ten);
    B.br(Lt, Body, Exit);
    B.setBlock(Body);
    uint16_t One = B.constInt(1);
    uint16_t I2 = B.binop(Opcode::Add, I, One);
    B.move(I, I2);
    B.jmp(Cond); // back edge
    B.setBlock(Exit);
    B.ret(I);
  });
  auto G = PathGraph::build(P, M);
  EXPECT_FALSE(G->fullyCut());
  // Paths: entry->cond->body (cut), entry->cond->exit->ret,
  // resume cond->body (cut), resume cond->exit->ret.
  EXPECT_EQ(G->numPaths(), 4u);
  const PathEdgeAction &Back = G->branchAction(2, 1);
  EXPECT_TRUE(Back.Cut);
  // Exactly the paths that used the real entry edge are method entries.
  int Entries = 0;
  for (uint64_t Id = 0; Id < G->numPaths(); ++Id)
    Entries += G->decode(Id).MethodEntry;
  EXPECT_EQ(Entries, 2);
}

TEST(PathGraph, CallSitesCutPaths) {
  Program P;
  MethodId Callee = makeMethod(P, [](IrBuilder &B) { B.ret(B.constInt(7)); });
  MethodId M = makeMethod(P, [&](IrBuilder &B) {
    uint16_t A = B.callStatic(Callee, {});
    uint16_t B2 = B.callStatic(Callee, {});
    uint16_t S = B.binop(Opcode::Add, A, B2);
    B.ret(S);
  });
  auto G = PathGraph::build(P, M);
  // Segments: [call1], [call2], [add,ret] -> 3 unit paths.
  EXPECT_EQ(G->numPaths(), 3u);
  const PathEdgeAction &A0 = G->callAction(makeSiteId(0, 0));
  EXPECT_TRUE(A0.Cut);
  const PathEdgeAction &A1 = G->callAction(makeSiteId(0, 1));
  EXPECT_TRUE(A1.Cut);
  // Exactly one of the three paths is a method entry.
  int Entries = 0;
  std::set<uint32_t> AllSites;
  for (uint64_t Id = 0; Id < G->numPaths(); ++Id) {
    PathEvents E = G->decode(Id);
    Entries += E.MethodEntry;
  }
  EXPECT_EQ(Entries, 1);
}

TEST(PathGraph, NestedBranchesCountPaths) {
  // Two sequential diamonds -> 4 paths.
  Program P;
  MethodId M = makeMethod(P, [](IrBuilder &B) {
    uint16_t C = B.constBool(true);
    BlockId T1 = B.newBlock(), F1 = B.newBlock(), J1 = B.newBlock();
    B.br(C, T1, F1);
    B.setBlock(T1);
    B.jmp(J1);
    B.setBlock(F1);
    B.jmp(J1);
    B.setBlock(J1);
    uint16_t C2 = B.constBool(false);
    BlockId T2 = B.newBlock(), F2 = B.newBlock();
    B.br(C2, T2, F2);
    B.setBlock(T2);
    B.ret(B.constInt(1));
    B.setBlock(F2);
    B.ret(B.constInt(2));
  });
  auto G = PathGraph::build(P, M);
  EXPECT_EQ(G->numPaths(), 4u);
  // All four ids decode without falling off the graph.
  for (uint64_t Id = 0; Id < 4; ++Id)
    EXPECT_TRUE(G->decode(Id).MethodEntry);
}

TEST(PathGraph, OverflowFallsBackToFullCut) {
  // 25 sequential diamonds -> 2^25 paths > PathLimit -> fully cut.
  Program P;
  MethodId M = makeMethod(P, [](IrBuilder &B) {
    for (int I = 0; I < 25; ++I) {
      uint16_t C = B.constBool(true);
      BlockId T = B.newBlock(), F = B.newBlock(), J = B.newBlock();
      B.br(C, T, F);
      B.setBlock(T);
      B.jmp(J);
      B.setBlock(F);
      B.jmp(J);
      B.setBlock(J);
    }
    B.ret(B.constInt(0));
  });
  auto G = PathGraph::build(P, M);
  EXPECT_TRUE(G->fullyCut());
  EXPECT_LE(G->numPaths(), PathGraph::PathLimit);
  EXPECT_GT(G->numPaths(), 0u);
  // Path id 0 (real entry edge to the first segment) is a method entry.
  EXPECT_TRUE(G->decode(G->entryValue()).MethodEntry);
}

TEST(PathGraph, DecodeOutOfRangeIsEmpty) {
  Program P;
  MethodId M = makeMethod(P, [](IrBuilder &B) { B.ret(B.constInt(0)); });
  auto G = PathGraph::build(P, M);
  PathEvents E = G->decode(999999);
  EXPECT_FALSE(E.MethodEntry);
  EXPECT_EQ(E.OperandCount, 0u);
}

TEST(PathGraph, RetEmitAddKnownForReturnBlocks) {
  Program P;
  MethodId M = makeMethod(P, [](IrBuilder &B) {
    uint16_t C = B.constBool(true);
    BlockId T = B.newBlock(), F = B.newBlock();
    B.br(C, T, F);
    B.setBlock(T);
    B.ret(B.constInt(1));
    B.setBlock(F);
    B.ret(B.constInt(2));
  });
  auto G = PathGraph::build(P, M);
  // Both return blocks have emit values, and they differ (distinct paths).
  uint64_t E1 = G->retEmitAdd(1);
  uint64_t E2 = G->retEmitAdd(2);
  const PathEdgeAction &B1 = G->branchAction(0, 1);
  const PathEdgeAction &B2 = G->branchAction(0, 2);
  EXPECT_NE(B1.Add + E1, B2.Add + E2);
}
