//===- EngineTest.cpp - Execution-engine and code-model tests ----------------===//

#include "src/core/Builder.h"
#include "src/lang/Compile.h"
#include "src/runtime/ExecEngine.h"

#include <gtest/gtest.h>

using namespace nimg;

namespace {

struct Fixture {
  Program P;
  NativeImage Img;

  explicit Fixture(const char *Source, uint64_t Seed = 1) {
    std::vector<std::string> Errors;
    bool Ok = compileSources({Source}, P, Errors);
    EXPECT_TRUE(Ok);
    for (auto &E : Errors)
      ADD_FAILURE() << E;
    BuildConfig Cfg;
    Cfg.Seed = Seed;
    Img = buildNativeImage(P, Cfg);
  }
};

} // namespace

TEST(CodeModel, InlinedCallStaysInCallerCu) {
  Fixture F("class T {\n"
            "  static int tiny() { return 7; }\n"
            "  static int caller() { return tiny() + 1; }\n"
            "}\n"
            "class Main { static int main() { return T.caller(); } }");
  MethodId Caller = F.P.findMethodBySig("T.caller()");
  MethodId Tiny = F.P.findMethodBySig("T.tiny()");
  const CompilationUnit &CU = F.Img.Code.cuOf(Caller);
  ASSERT_GE(CU.Copies.size(), 2u) << "tiny() was not inlined";

  CuCodeModel Model(F.Img.Code);
  ExecContext CallerCtx{F.Img.Code.CuOfMethod[size_t(Caller)], 0};
  // Find the call site of tiny() in caller().
  const Method &M = F.P.method(Caller);
  uint32_t Site = 0;
  for (size_t B = 0; B < M.Blocks.size(); ++B)
    for (size_t I = 0; I < M.Blocks[B].Instrs.size(); ++I)
      if (M.Blocks[B].Instrs[I].Op == Opcode::CallStatic &&
          M.Blocks[B].Instrs[I].Aux == Tiny)
        Site = makeSiteId(BlockId(B), I);
  ExecContext Inlined = Model.enterContext(CallerCtx, Site, Tiny);
  EXPECT_EQ(Inlined.Cu, CallerCtx.Cu) << "inlined call left the CU";
  EXPECT_GT(Inlined.Copy, 0);
  // A mismatching target (guarded devirtualization miss) dispatches out.
  ExecContext Missed = Model.enterContext(CallerCtx, Site, Caller);
  EXPECT_EQ(Missed.Cu, F.Img.Code.CuOfMethod[size_t(Caller)]);
  EXPECT_EQ(Missed.Copy, 0);
}

TEST(Engine, DeterministicAcrossRuns) {
  Fixture F("class Main { static int main() {\n"
            "  int s = 0;\n"
            "  for (int i = 0; i < 50; i = i + 1) { s = s + i; }\n"
            "  Sys.printInt(s);\n"
            "  return s; } }");
  RunConfig RC;
  RunStats A = runImage(F.Img, RC);
  RunStats B = runImage(F.Img, RC);
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.TextFaults, B.TextFaults);
  EXPECT_EQ(A.HeapFaults, B.HeapFaults);
  EXPECT_EQ(A.Instructions, B.Instructions);
  EXPECT_EQ(A.TimeNs, B.TimeNs);
}

TEST(Engine, RunsDoNotContaminateEachOther) {
  // Static mutation in one run must not leak into the next (each run
  // executes on a private copy of the image heap and statics).
  Fixture F("class S { static int counter = 0; }\n"
            "class Main { static int main() {\n"
            "  S.counter = S.counter + 1;\n"
            "  Sys.printInt(S.counter);\n"
            "  return S.counter; } }");
  RunConfig RC;
  RunStats A = runImage(F.Img, RC);
  RunStats B = runImage(F.Img, RC);
  EXPECT_EQ(A.Output, "1\n");
  EXPECT_EQ(B.Output, "1\n");
}

TEST(Engine, SpawnedThreadsRunToCompletion) {
  Fixture F("class W {\n"
            "  static int done = 0;\n"
            "  static void run() { W.done = W.done + 1; }\n"
            "}\n"
            "class Main { static int main() {\n"
            "  Sys.spawn(\"W.run\");\n"
            "  Sys.spawn(\"W.run\");\n"
            "  return 0; } }");
  RunConfig RC;
  RunStats S = runImage(F.Img, RC);
  EXPECT_FALSE(S.Trapped) << S.TrapMessage;
  EXPECT_FALSE(S.FuelExhausted);
}

TEST(Engine, FuelExhaustionIsReportedNotFatal) {
  Fixture F("class Main { static int main() {\n"
            "  int i = 0;\n"
            "  while (i >= 0) { i = i + 1; if (i > 1000000000) { i = 0; } }\n"
            "  return i; } }");
  RunConfig RC;
  RC.MaxInstructions = 50'000;
  RunStats S = runImage(F.Img, RC);
  EXPECT_TRUE(S.FuelExhausted);
  EXPECT_FALSE(S.Trapped);
}

TEST(Engine, TrapSurfacesMessage) {
  Fixture F("class Main { static int main() {\n"
            "  int[] a = new int[1];\n"
            "  return a[5]; } }");
  RunConfig RC;
  RunStats S = runImage(F.Img, RC);
  EXPECT_TRUE(S.Trapped);
  EXPECT_NE(S.TrapMessage.find("out of bounds"), std::string::npos);
}

TEST(Engine, ColdVsWarmTimesDiffer) {
  Fixture F("class S { static String blob = \"0123456789\" + \"abcdef\"; }\n"
            "class Main { static int main() {\n"
            "  return Str.length(S.blob); } }");
  RunConfig Cold;
  RunConfig Warm = Cold;
  Warm.ColdCache = false;
  RunStats C = runImage(F.Img, Cold);
  RunStats W = runImage(F.Img, Warm);
  EXPECT_GT(C.totalFaults(), 0u);
  EXPECT_EQ(W.totalFaults(), 0u);
  EXPECT_GT(C.TimeNs, W.TimeNs);
  EXPECT_EQ(C.Output, W.Output);
}

TEST(Engine, NativeTailIsTouchedByNatives) {
  Fixture F("class Main { static int main() {\n"
            "  Sys.print(\"hello\");\n"
            "  return 0; } }");
  RunConfig RC;
  RunStats S = runImage(F.Img, RC);
  // At least one fault must land in the native tail (Print's stub).
  uint64_t TailStart = F.Img.Layout.NativeTailOffset / RC.Paging.PageSize;
  bool TailTouched = false;
  for (size_t Pg = size_t(TailStart); Pg < S.TextPages.size(); ++Pg)
    if (S.TextPages[Pg] != PageState::Untouched)
      TailTouched = true;
  EXPECT_TRUE(TailTouched);
}

TEST(Engine, HeapOrderTraceOperandCountsMatchDecode) {
  // Property: for a heap-order capture, replaying never runs out of
  // words mid-record and every operand index is in range.
  Fixture F("class Box { int v; Box(int v) { this.v = v; } }\n"
            "class S { static Box box = new Box(41); }\n"
            "class Main { static int main() {\n"
            "  int s = 0;\n"
            "  for (int i = 0; i < 10; i = i + 1) { s = s + S.box.v; }\n"
            "  return s; } }",
            9);
  BuildConfig Cfg;
  Cfg.Seed = 9;
  Cfg.Instrumented = true;
  NativeImage Instr = buildNativeImage(F.P, Cfg);
  TraceOptions TOpts;
  TOpts.Mode = TraceMode::HeapOrder;
  RunConfig RC;
  RC.Trace = &TOpts;
  TraceCapture Capture;
  RunStats S = runImage(Instr, RC, &Capture);
  ASSERT_FALSE(S.Trapped) << S.TrapMessage;
  ASSERT_GT(Capture.totalWords(), 0u);

  PathGraphCache Paths(F.P);
  for (const ThreadTrace &T : Capture.Threads) {
    size_t I = 0;
    while (I < T.Words.size()) {
      uint64_t W = T.Words[I++];
      ASSERT_TRUE(tracerec::isPath(W)) << "word " << I;
      PathEvents E =
          Paths.of(tracerec::pathMethod(W)).decode(tracerec::pathId(W));
      ASSERT_LE(I + E.OperandCount, T.Words.size())
          << "operands truncated mid-record";
      for (uint32_t K = 0; K < E.OperandCount; ++K) {
        uint64_t Op = T.Words[I++];
        if (Op != 0)
          ASSERT_LT(Op - 1, Instr.Snapshot.Entries.size());
      }
    }
  }
}
