//===- FleetTest.cpp - Fleet serving simulator correctness ------------------===//
//
// The COW-cache correctness contract of src/fleet/: a 1-instance fleet
// reproduces the single-run PagingSim byte for byte (fault count AND
// modeled time) for every layout strategy; fleet results are deterministic
// across seeds and across --jobs; warm sharing and capacity thrash behave
// as modeled; the arrival generator is seeded and sorted; the hoisted
// CostModel matches what ExecEngine charges; and the startup report's
// fleet section round-trips through the JSON parser. This binary carries
// the "fleet" ctest label (plus "tsan" for the sanitizer lane).
//
//===----------------------------------------------------------------------===//

#include "src/core/Builder.h"
#include "src/fleet/FleetCache.h"
#include "src/fleet/FleetSim.h"
#include "src/lang/Compile.h"
#include "src/obs/Json.h"
#include "src/obs/StartupReport.h"
#include "src/support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

using namespace nimg;

namespace {

/// A workload big enough to span multiple text pages with a cold tail:
/// NumClasses classes of four methods each, where only every third class
/// is ever called.
std::string syntheticWorkload(int NumClasses) {
  std::string Src;
  for (int C = 0; C < NumClasses; ++C) {
    std::string Name = "Gen" + std::to_string(C);
    Src += "class " + Name + " {\n";
    Src += "  static String blob = \"class-" + std::to_string(C) +
           " payload payload payload payload payload payload\";\n";
    for (int M = 0; M < 6; ++M) {
      std::string MN = "m" + std::to_string(M);
      Src += "  static int " + MN + "(int x) {\n"
             "    int acc = x + " + std::to_string(C * 31 + M) + ";\n";
      for (int S = 0; S < 8; ++S)
        Src += "    acc = acc * 3 + (acc / " + std::to_string(S + 2) +
               ") - " + std::to_string(C * 97 + S) + ";\n";
      Src += "    for (int i = 0; i < 7; i = i + 1) { acc = acc + i * x; }\n"
             "    return acc;\n  }\n";
    }
    Src += "}\n";
  }
  Src += "class Main {\n  static int main() {\n    int t = 0;\n";
  for (int C = 0; C < NumClasses; C += 3)
    for (int M = 0; M < 6; ++M)
      Src += "    t = t + Gen" + std::to_string(C) + ".m" +
             std::to_string(M) + "(" + std::to_string(C + M) + ");\n";
  Src += "    Sys.print(\"t=\" + t);\n    return t;\n  }\n}\n";
  return Src;
}

struct Env {
  Program P;
  CollectedProfiles Prof;

  Env() {
    std::vector<std::string> Errors;
    bool Ok = compileSources({syntheticWorkload(48)}, P, Errors);
    EXPECT_TRUE(Ok);
    for (auto &E : Errors)
      ADD_FAILURE() << E;
    BuildConfig ProfCfg;
    ProfCfg.Seed = 1001;
    Prof = collectProfiles(P, ProfCfg, RunConfig());
  }

  NativeImage build(CodeStrategy Code, bool Split, bool ExtTsp) {
    BuildConfig Cfg;
    Cfg.Seed = 1;
    Cfg.CodeOrder = Code;
    Cfg.CodeProf = Code == CodeStrategy::CuOrder
                       ? &Prof.Cu
                       : Code == CodeStrategy::MethodOrder ? &Prof.Method
                                                          : &Prof.Cluster;
    if (Split) {
      Cfg.Split = SplitMode::HotCold;
      Cfg.BlockProf = &Prof.Blocks;
      if (ExtTsp) {
        Cfg.SplitOpts.Blocks = BlockOrderMode::ExtTsp;
        Cfg.EdgeProf = &Prof.Edges;
      }
    }
    NativeImage Img = buildNativeImage(P, Cfg);
    EXPECT_FALSE(Img.Built.Failed);
    return Img;
  }
};

/// Demand-fault every page so layout differences are visible and the
/// replay trace is dense.
RunConfig demandRun() {
  RunConfig Run;
  Run.Paging.ReadaheadPages = 1;
  return Run;
}

} // namespace

//===----------------------------------------------------------------------===//
// The N=1 anchor: a 1-instance fleet IS the single run.
//===----------------------------------------------------------------------===//

TEST(FleetSim, OneInstanceEqualsSingleRunForEveryStrategy) {
  Env E;
  struct Variant {
    CodeStrategy Code;
    bool Split;
    bool ExtTsp;
  };
  const Variant Variants[] = {
      {CodeStrategy::CuOrder, false, false},
      {CodeStrategy::MethodOrder, false, false},
      {CodeStrategy::Cluster, false, false},
      {CodeStrategy::Cluster, true, false},
      {CodeStrategy::Cluster, true, true},
  };
  for (const Variant &V : Variants) {
    SCOPED_TRACE(::testing::Message()
                 << "code=" << int(V.Code) << " split=" << V.Split
                 << " exttsp=" << V.ExtTsp);
    NativeImage Img = E.build(V.Code, V.Split, V.ExtTsp);
    RunConfig Run = demandRun();
    RunStats Single = runImage(Img, Run);
    ASSERT_FALSE(Single.Trapped) << Single.TrapMessage;

    FleetConfig FC;
    FC.Instances = 1;
    RunStats Ref;
    FleetResult FR = runFleet(Img, Run, FC, &Ref);

    // Fault counts byte-for-byte, and the modeled p50 equals the single
    // run's TimeNs exactly (the cost sums are integer-exact in double).
    EXPECT_EQ(FR.TotalMajors, Single.totalFaults());
    EXPECT_EQ(FR.ReferenceFaults, Single.totalFaults());
    EXPECT_EQ(FR.UniquePages, Single.totalFaults());
    EXPECT_EQ(FR.TotalWarmHits, 0u);
    EXPECT_EQ(FR.P50Ns, Single.TimeNs);
    EXPECT_EQ(FR.P99Ns, Single.TimeNs);
    EXPECT_EQ(FR.ReferenceTimeNs, Single.TimeNs);
    EXPECT_EQ(Ref.totalFaults(), Single.totalFaults());
    EXPECT_EQ(Ref.Output, Single.Output);
  }
}

TEST(FleetSim, OneInstanceStaysExactUnderTinyCache) {
  // The first-touch trace touches each demand page once, so capacity
  // eviction can never force a re-fault at N=1: exactness must survive
  // even a minimal cache.
  Env E;
  NativeImage Img = E.build(CodeStrategy::Cluster, true, false);
  RunConfig Run = demandRun();
  RunStats Single = runImage(Img, Run);

  FleetConfig FC;
  FC.Instances = 1;
  FC.CachePages = 2;
  FleetResult FR = runFleet(Img, Run, FC);
  EXPECT_EQ(FR.TotalMajors, Single.totalFaults());
  EXPECT_EQ(FR.P50Ns, Single.TimeNs);
  EXPECT_GT(FR.Evictions, 0u);
}

TEST(FleetSim, OneInstanceStaysExactWithHugePages) {
  // The anchor must hold at any page-size mix: per-fault accumulation of
  // majorFaultNs(native size) equals the single run's multiplied formula
  // because both cost values are integer-valued doubles.
  Env E;
  BuildConfig Cfg;
  Cfg.Seed = 1;
  Cfg.CodeOrder = CodeStrategy::Cluster;
  Cfg.CodeProf = &E.Prof.Cluster;
  Cfg.Image.HugePages = 1;
  NativeImage Img = buildNativeImage(E.P, Cfg);
  ASSERT_FALSE(Img.Built.Failed);
  ASSERT_GT(Img.Layout.HugePages, 0u);

  RunConfig Run = demandRun();
  RunStats Single = runImage(Img, Run);
  ASSERT_GT(Single.TextHugeFaults, 0u);

  FleetConfig FC;
  FC.Instances = 1;
  RunStats Ref;
  FleetResult FR = runFleet(Img, Run, FC, &Ref);
  EXPECT_EQ(FR.TotalMajors, Single.totalFaults());
  EXPECT_EQ(FR.ReferenceFaults, Single.totalFaults());
  EXPECT_EQ(FR.TotalWarmHits, 0u);
  EXPECT_EQ(FR.P50Ns, Single.TimeNs);
  EXPECT_EQ(FR.P99Ns, Single.TimeNs);
  EXPECT_EQ(Ref.TextHugeFaults, Single.TextHugeFaults);
}

//===----------------------------------------------------------------------===//
// Determinism: seeds and --jobs.
//===----------------------------------------------------------------------===//

TEST(FleetSim, ByteIdenticalAcrossJobs) {
  Env E;
  FleetConfig FC;
  FC.Instances = 16;
  FC.ArrivalWindowNs = 5e6;

  uint64_t Majors = 0, Warm = 0;
  double P50 = 0, P99 = 0, Mean = 0;
  const int JobsLadder[] = {1, 2, 5, 8};
  for (size_t I = 0; I < 4; ++I) {
    setJobs(JobsLadder[I]);
    NativeImage Img = E.build(CodeStrategy::Cluster, true, true);
    FleetResult FR = runFleet(Img, demandRun(), FC);
    if (I == 0) {
      Majors = FR.TotalMajors;
      Warm = FR.TotalWarmHits;
      P50 = FR.P50Ns;
      P99 = FR.P99Ns;
      Mean = FR.MeanNs;
      EXPECT_GT(Warm, 0u);
    } else {
      SCOPED_TRACE(::testing::Message() << "jobs=" << JobsLadder[I]);
      EXPECT_EQ(FR.TotalMajors, Majors);
      EXPECT_EQ(FR.TotalWarmHits, Warm);
      // Bit-equal doubles, not approximate: the whole pipeline must be
      // order-independent.
      EXPECT_EQ(FR.P50Ns, P50);
      EXPECT_EQ(FR.P99Ns, P99);
      EXPECT_EQ(FR.MeanNs, Mean);
    }
  }
  setJobs(0);
}

TEST(FleetSim, SeedChangesArrivalsButNotColdPageEconomy) {
  Env E;
  NativeImage Img = E.build(CodeStrategy::CuOrder, false, false);
  RunConfig Run = demandRun();
  RunConfig RefCfg = Run;
  RefCfg.RecordTouches = true;
  RunStats Ref = runImage(Img, RefCfg);

  FleetConfig FC;
  FC.Instances = 24;
  FC.ArrivalWindowNs = 8e6;
  FleetResult A = simulateFleet(Ref, Img.Layout.TextSize, Img.Layout.HeapSize,
                                Run.Paging, Run.Cost, FC);
  FleetResult B = simulateFleet(Ref, Img.Layout.TextSize, Img.Layout.HeapSize,
                                Run.Paging, Run.Cost, FC);
  // Same seed: everything identical.
  EXPECT_EQ(A.TotalMajors, B.TotalMajors);
  EXPECT_EQ(A.P99Ns, B.P99Ns);
  EXPECT_EQ(A.MeanNs, B.MeanNs);

  FC.Seed = 99;
  FleetResult C = simulateFleet(Ref, Img.Layout.TextSize, Img.Layout.HeapSize,
                                Run.Paging, Run.Cost, FC);
  // Different seed: arrivals move, but with an unlimited cache each page
  // majors exactly once fleet-wide and every instance replays the same
  // trace — so the fleet-wide page economy is seed-invariant.
  EXPECT_EQ(C.TotalMajors, A.TotalMajors);
  EXPECT_EQ(C.UniquePages, A.UniquePages);
  EXPECT_EQ(C.TotalMajors + C.TotalWarmHits, A.TotalMajors + A.TotalWarmHits);
  EXPECT_EQ(C.Evictions, 0u);
}

//===----------------------------------------------------------------------===//
// Warm sharing and capacity thrash.
//===----------------------------------------------------------------------===//

TEST(FleetSim, SecondInstanceRidesWarmPages) {
  Env E;
  NativeImage Img = E.build(CodeStrategy::Cluster, false, false);
  FleetConfig FC;
  FC.Instances = 2;
  FC.ArrivalWindowNs = 1e6;

  FleetResult FR = runFleet(Img, demandRun(), FC);
  // With an unlimited cache every demand page majors exactly once
  // fleet-wide; both instances touch the full set, so warm hits equal
  // majors and the ratio is exactly one half.
  EXPECT_EQ(FR.TotalMajors, FR.UniquePages);
  EXPECT_EQ(FR.TotalWarmHits, FR.TotalMajors);
  EXPECT_DOUBLE_EQ(FR.warmHitRatio(), 0.5);
  // The overlapping instances split the major bill (they leapfrog through
  // the trace), so both beat a lone cold start and neither exceeds it.
  EXPECT_LT(FR.P50Ns, FR.ReferenceTimeNs);
  EXPECT_LE(FR.P99Ns, FR.ReferenceTimeNs);
}

TEST(FleetSim, TinyCacheThrashesButUniquePagesHold) {
  Env E;
  NativeImage Img = E.build(CodeStrategy::CuOrder, false, false);
  FleetConfig Unlimited;
  Unlimited.Instances = 8;
  Unlimited.ArrivalWindowNs = 40e6; // Spread out: later arrivals find a
                                    // fully warm (or evicted) cache.
  FleetConfig Tiny = Unlimited;
  Tiny.CachePages = 4;

  FleetResult Free = runFleet(Img, demandRun(), Unlimited);
  FleetResult Thrash = runFleet(Img, demandRun(), Tiny);

  EXPECT_EQ(Free.Evictions, 0u);
  EXPECT_GT(Thrash.Evictions, 0u);
  // Thrash re-faults evicted pages: more majors than distinct pages, and
  // more than the unlimited cache pays.
  EXPECT_GT(Thrash.TotalMajors, Thrash.UniquePages);
  EXPECT_GT(Thrash.TotalMajors, Free.TotalMajors);
  // The distinct-page universe is a property of the trace, not the cache.
  EXPECT_EQ(Thrash.UniquePages, Free.UniquePages);
  // Event count is conserved: every demand touch is major or warm.
  EXPECT_EQ(Thrash.TotalMajors + Thrash.TotalWarmHits,
            Free.TotalMajors + Free.TotalWarmHits);
  // p99 is the fully-cold straggler's bill in BOTH runs (cold start is
  // service time, not queueing) — the thrash tax shows up in the mean and
  // median, where the unlimited cache hands later arrivals cheap starts.
  EXPECT_GT(Thrash.MeanNs, Free.MeanNs);
  EXPECT_GT(Thrash.P50Ns, Free.P50Ns);
}

//===----------------------------------------------------------------------===//
// Traffic generator.
//===----------------------------------------------------------------------===//

TEST(Traffic, ArrivalsAreSortedSeededAndInWindow) {
  for (ArrivalKind Kind :
       {ArrivalKind::Uniform, ArrivalKind::Poisson, ArrivalKind::Storm}) {
    SCOPED_TRACE(arrivalKindName(Kind));
    TrafficConfig Cfg;
    Cfg.Kind = Kind;
    Cfg.Instances = 200;
    Cfg.WindowNs = 1e7;
    std::vector<double> A = generateArrivals(Cfg);
    ASSERT_EQ(A.size(), 200u);
    EXPECT_TRUE(std::is_sorted(A.begin(), A.end()));
    EXPECT_GE(A.front(), 0.0);
    if (Kind != ArrivalKind::Poisson) // Poisson tail may pass the window.
      EXPECT_LE(A.back(), Cfg.WindowNs);

    std::vector<double> B = generateArrivals(Cfg);
    EXPECT_EQ(A, B);

    TrafficConfig Other = Cfg;
    Other.Seed = Cfg.Seed + 1;
    EXPECT_NE(generateArrivals(Other), A);
  }
}

TEST(Traffic, StormConcentratesArrivalsIntoBursts) {
  TrafficConfig Cfg;
  Cfg.Kind = ArrivalKind::Storm;
  Cfg.Instances = 400;
  Cfg.WindowNs = 1e8;
  Cfg.StormBursts = 4;
  std::vector<double> A = generateArrivals(Cfg);
  // Bursts sit a quarter-window apart with 2% jitter: every arrival lands
  // within 3% of one of the four burst centers, so the distinct "times"
  // rounded to a 10th of the spacing collapse to at most StormBursts
  // clusters.
  double Spacing = Cfg.WindowNs / 4.0;
  std::set<long> Clusters;
  for (double T : A)
    Clusters.insert(lround(T / Spacing));
  EXPECT_LE(Clusters.size(), 4u);
}

TEST(Traffic, KindNamesRoundTrip) {
  for (ArrivalKind Kind :
       {ArrivalKind::Uniform, ArrivalKind::Poisson, ArrivalKind::Storm}) {
    ArrivalKind Parsed;
    EXPECT_TRUE(parseArrivalKind(arrivalKindName(Kind), Parsed));
    EXPECT_EQ(Parsed, Kind);
  }
  ArrivalKind Parsed;
  EXPECT_FALSE(parseArrivalKind("bursty", Parsed));
}

//===----------------------------------------------------------------------===//
// CostModel: the hoisted constants are what ExecEngine charges.
//===----------------------------------------------------------------------===//

TEST(CostModel, MajorFaultCostMatchesLegacyConstantsAtBasePageSize) {
  CostModel C;
  EXPECT_DOUBLE_EQ(C.majorFaultNs(4096), C.FaultNs);
  EXPECT_DOUBLE_EQ(C.majorFaultNs(8192), C.FaultNs + 4.0 * C.TransferNsPerKiB);
  // Below-base page sizes never discount a fault.
  EXPECT_DOUBLE_EQ(C.majorFaultNs(1024), C.FaultNs);
}

TEST(CostModel, StartupFormulaReproducesRunStatsTime) {
  Env E;
  NativeImage Img = E.build(CodeStrategy::CuOrder, false, false);
  RunConfig Run = demandRun();
  RunStats S = runImage(Img, Run);
  EXPECT_EQ(S.TimeNs,
            Run.Cost.startupNs(S.Instructions, S.ProbeUnits, S.totalFaults()));
}

//===----------------------------------------------------------------------===//
// PagingSim eviction + first-touch recording primitives.
//===----------------------------------------------------------------------===//

TEST(PagingSim, EvictPageForcesRefault) {
  PagingConfig Cfg;
  Cfg.ReadaheadPages = 1;
  PagingSim Sim(4 * Cfg.PageSize, 0, Cfg);
  Sim.touch(ImageSection::Text, 0, 1);
  ASSERT_EQ(Sim.totalFaults(), 1u);
  ASSERT_EQ(Sim.residentPages(ImageSection::Text), 1u);

  EXPECT_TRUE(Sim.evictPage(ImageSection::Text, 0));
  EXPECT_EQ(Sim.residentPages(ImageSection::Text), 0u);
  EXPECT_EQ(Sim.pageStates(ImageSection::Text)[0], PageState::Untouched);
  // Evicting an already-cold or out-of-range page is a no-op.
  EXPECT_FALSE(Sim.evictPage(ImageSection::Text, 0));
  EXPECT_FALSE(Sim.evictPage(ImageSection::Text, 999));

  Sim.touch(ImageSection::Text, 0, 1);
  EXPECT_EQ(Sim.totalFaults(), 2u);
  EXPECT_EQ(Sim.counters().EvictedPages, 1u);
}

TEST(PagingSim, FirstTouchTraceAccountsForEveryFault) {
  Env E;
  NativeImage Img = E.build(CodeStrategy::Cluster, true, false);
  RunConfig Run = demandRun();
  Run.RecordTouches = true;
  RunStats S = runImage(Img, Run);

  ASSERT_FALSE(S.Touches.empty());
  uint64_t FaultTouches = 0;
  std::set<std::pair<int, uint64_t>> Seen;
  uint64_t LastClock = 0;
  for (const PageTouch &T : S.Touches) {
    if (T.WasFault)
      ++FaultTouches;
    // Each (section, page) appears at most once, in nondecreasing model
    // clock order.
    EXPECT_TRUE(Seen.insert({int(T.Sec), T.Page}).second);
    EXPECT_GE(T.Clock, LastClock);
    LastClock = T.Clock;
  }
  EXPECT_EQ(FaultTouches, S.totalFaults());
}

//===----------------------------------------------------------------------===//
// FleetPageCache capacity clamp.
//===----------------------------------------------------------------------===//

TEST(FleetPageCache, CapacityIsClampedToReadaheadCluster) {
  PagingConfig Cfg; // Default readahead cluster (4 pages).
  FleetPageCache Cache(16 * Cfg.PageSize, 0, Cfg, 1);
  // One touch pulls a whole readahead cluster in; a capacity below the
  // cluster size would evict pages from the very cluster being faulted,
  // so the cache clamps instead of thrashing its own readahead.
  EXPECT_EQ(Cache.touchPage(ImageSection::Text, 0), FleetTouch::Major);
  EXPECT_EQ(Cache.touchPage(ImageSection::Text, 1), FleetTouch::WarmHit);
  EXPECT_EQ(Cache.evictions(), 0u);
}

//===----------------------------------------------------------------------===//
// The report's fleet section.
//===----------------------------------------------------------------------===//

TEST(FleetReport, FleetSectionRoundTripsThroughJson) {
  Env E;
  NativeImage Img = E.build(CodeStrategy::Cluster, true, true);
  FleetConfig FC;
  FC.Instances = 10;
  FC.ArrivalWindowNs = 2e6;
  RunStats Ref;
  FleetResult FR = runFleet(Img, demandRun(), FC, &Ref);

  obs::StartupReport Report;
  Report.Target = "fleet-workload";
  Report.Command = "run";
  Report.setRun(Ref);
  Report.setImage(Img);
  Report.setFleet(FR, FC);

  std::string Json = Report.toJson();
  obs::JsonValue V;
  std::string Error;
  ASSERT_TRUE(obs::parseJson(Json, V, &Error)) << Error;
  for (const char *Key :
       {"\"fleet\"", "\"instances\"", "\"arrivals\"", "\"warm_hit_permille\"",
        "\"cold_start_p50_ns\"", "\"cold_start_p99_ns\"", "\"unique_pages\"",
        "\"reference_faults\""})
    EXPECT_NE(Json.find(Key), std::string::npos) << Key;

  // CSV mirrors the same section.
  std::string Csv = Report.toCsv();
  EXPECT_NE(Csv.find("fleet,warm_hits,"), std::string::npos);
  EXPECT_NE(Csv.find("fleet,cold_start_p99_ns,"), std::string::npos);
}
