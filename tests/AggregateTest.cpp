//===- AggregateTest.cpp - Fleet-scale profile aggregation ------------------===//
//
// Unit tests for the multi-profile aggregator: the v2 interchange header,
// every quarantine gate and its typed reason, the coverage x freshness
// weight math, the merged ranking, the degradation ladder
// (merged -> best single -> fallback), determinism of the fold, the
// fail-open member loaders, and the crash-safe atomic file writer the
// fleet artifacts ride on. This binary carries the "merge" ctest label.
//
//===----------------------------------------------------------------------===//

#include "src/core/Builder.h"
#include "src/lang/Compile.h"
#include "src/profiling/Aggregate.h"
#include "src/support/AtomicFile.h"
#include "src/support/Crc32.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace nimg;

namespace {

/// Builds a realistic member by round-tripping a synthetic profile
/// through the CSV interchange — so every test member carries a valid
/// header, CRC, and ProfileReadReport, exactly like a file off disk.
MemberProfile makeMember(std::string Name, std::vector<std::string> Sigs,
                         std::vector<uint64_t> Counts = {}, uint64_t Gen = 0,
                         uint32_t Cov = 1000, uint64_t Fp = 0) {
  CodeProfile P;
  P.Header.Mode = TraceMode::CuOrder;
  P.Header.Generation = Gen;
  P.Header.CoveragePermille = Cov;
  P.Header.Fingerprint = Fp;
  P.Sigs = std::move(Sigs);
  P.Counts = std::move(Counts);
  return loadMemberProfile(std::move(Name), P.toCsv());
}

const MergeMemberReport *reportFor(const MergeManifest &M,
                                   const std::string &Name) {
  for (const MergeMemberReport &R : M.Members)
    if (R.Name == Name)
      return &R;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// v2 interchange header.
//===----------------------------------------------------------------------===//

TEST(ProfileHeaderV2Test, GenerationAndCoverageRoundTrip) {
  CodeProfile P;
  P.Header.Mode = TraceMode::CuOrder;
  P.Header.Fingerprint = 0xabcdef12u;
  P.Header.Generation = 42;
  P.Header.CoveragePermille = 750;
  P.Sigs = {"a", "b", "c"};
  P.Counts = {7, 3, 1};

  ProfileReadReport Read;
  CodeProfile Back = CodeProfile::fromCsv(P.toCsv(), &Read);
  EXPECT_EQ(Back.LoadError, ProfileError::None);
  EXPECT_EQ(Read.Header.Version, 2u);
  EXPECT_EQ(Back.Header.Generation, 42u);
  EXPECT_EQ(Back.Header.CoveragePermille, 750u);
  EXPECT_EQ(Back.Sigs, P.Sigs);
  EXPECT_EQ(Back.Counts, P.Counts);
}

TEST(ProfileHeaderV2Test, V1HeaderStillParsesWithDefaults) {
  // A six-cell v1 header (no generation/coverage cells) must keep
  // parsing: old fleets feed new aggregators.
  std::string Payload = "Main.main()\n";
  char Header[128];
  std::snprintf(Header, sizeof(Header),
                "#nimg-profile,1,cu,-,0000000000000000,%08x\n",
                crc32(Payload));
  ProfileReadReport Read;
  CodeProfile P = CodeProfile::fromCsv(std::string(Header) + Payload, &Read);
  EXPECT_TRUE(Read.usable());
  EXPECT_EQ(P.Header.Generation, 0u);
  EXPECT_EQ(P.Header.CoveragePermille, 1000u);
  EXPECT_EQ(P.Sigs.size(), 1u);
}

TEST(ProfileHeaderV2Test, CountsAreOptionalInPayload) {
  CodeProfile P;
  P.Header.Mode = TraceMode::CuOrder;
  P.Sigs = {"x", "y"};
  std::string Csv = P.toCsv();
  CodeProfile Back = CodeProfile::fromCsv(Csv);
  EXPECT_EQ(Back.LoadError, ProfileError::None);
  EXPECT_TRUE(Back.Counts.empty());
  EXPECT_EQ(Back.countAt(0), 1u); // Absent counts read as 1.
}

//===----------------------------------------------------------------------===//
// Quarantine gates, each with its typed reason.
//===----------------------------------------------------------------------===//

TEST(AggregateTest, ChecksumCorruptionIsQuarantined) {
  MemberProfile Good = makeMember("good", {"a", "b", "c"});
  std::string Bad = Good.Profile.toCsv();
  // Flip a payload byte (past the header line) that the CRC must catch.
  Bad[Bad.find('\n') + 1] ^= 0x20;
  std::vector<MemberProfile> Members = {Good, loadMemberProfile("bad", Bad)};

  MergeResult R = aggregateProfiles(Members);
  const MergeMemberReport *Rep = reportFor(R.Manifest, "bad");
  ASSERT_NE(Rep, nullptr);
  EXPECT_EQ(Rep->Status, MergeMemberStatus::Quarantined);
  EXPECT_EQ(Rep->Reason, ProfileError::ChecksumMismatch);
  EXPECT_EQ(R.Manifest.Outcome, MergeOutcome::BestSingle);
}

TEST(AggregateTest, DuplicateNameQuarantinesLaterHolder) {
  std::vector<MemberProfile> Members = {
      makeMember("inst0", {"a", "b"}),
      makeMember("inst0", {"b", "a"}),
      makeMember("inst1", {"a", "b"}),
  };
  MergeResult R = aggregateProfiles(Members);
  EXPECT_EQ(R.Manifest.Members[0].Status, MergeMemberStatus::Accepted);
  EXPECT_EQ(R.Manifest.Members[1].Status, MergeMemberStatus::Quarantined);
  EXPECT_EQ(R.Manifest.Members[1].Reason, ProfileError::DuplicateMember);
  EXPECT_EQ(R.Manifest.Members[2].Status, MergeMemberStatus::Accepted);
  EXPECT_EQ(R.Manifest.Outcome, MergeOutcome::Merged);
}

TEST(AggregateTest, FingerprintSkewIsQuarantined) {
  MergeOptions Opts;
  Opts.ExpectedFingerprint = 0x1111;
  std::vector<MemberProfile> Members = {
      makeMember("same", {"a", "b"}, {}, 0, 1000, 0x1111),
      makeMember("skewed", {"a", "b"}, {}, 0, 1000, 0x2222),
      makeMember("unknown", {"a", "b"}, {}, 0, 1000, 0), // 0 = no check.
  };
  MergeResult R = aggregateProfiles(Members, Opts);
  EXPECT_EQ(reportFor(R.Manifest, "skewed")->Status,
            MergeMemberStatus::Quarantined);
  EXPECT_EQ(reportFor(R.Manifest, "skewed")->Reason,
            ProfileError::FingerprintMismatch);
  EXPECT_EQ(reportFor(R.Manifest, "same")->Status,
            MergeMemberStatus::Accepted);
  EXPECT_EQ(reportFor(R.Manifest, "unknown")->Status,
            MergeMemberStatus::Accepted);
}

TEST(AggregateTest, NonCuModeIsQuarantined) {
  CodeProfile Method;
  Method.Header.Mode = TraceMode::MethodOrder;
  Method.Sigs = {"m1", "m2"};
  std::vector<MemberProfile> Members = {
      makeMember("cu", {"a"}),
      loadMemberProfile("method", Method.toCsv()),
  };
  MergeResult R = aggregateProfiles(Members);
  EXPECT_EQ(reportFor(R.Manifest, "method")->Status,
            MergeMemberStatus::Quarantined);
  EXPECT_EQ(reportFor(R.Manifest, "method")->Reason,
            ProfileError::ModeMismatch);
}

TEST(AggregateTest, CoverageBelowGateIsQuarantined) {
  std::vector<MemberProfile> Members = {
      makeMember("full", {"a", "b"}),
      makeMember("thin", {"a", "b"}, {}, 0, 100), // 10% << 50% gate.
      makeMember("empty", {}),
  };
  MergeResult R = aggregateProfiles(Members);
  EXPECT_EQ(reportFor(R.Manifest, "thin")->Status,
            MergeMemberStatus::Quarantined);
  EXPECT_EQ(reportFor(R.Manifest, "thin")->Reason,
            ProfileError::CoverageBelowGate);
  EXPECT_EQ(reportFor(R.Manifest, "empty")->Status,
            MergeMemberStatus::Quarantined);
  EXPECT_EQ(reportFor(R.Manifest, "empty")->Reason,
            ProfileError::CoverageBelowGate);
}

TEST(AggregateTest, StaleGenerationIsQuarantinedAndZeroIsExempt) {
  std::vector<MemberProfile> Members = {
      makeMember("new0", {"a", "b"}, {}, 100),
      makeMember("new1", {"b", "a"}, {}, 103),
      makeMember("stale", {"a", "b"}, {}, 1),   // Lags 102 > 8.
      makeMember("legacy", {"a", "b"}, {}, 0),  // Unstamped: exempt.
  };
  MergeResult R = aggregateProfiles(Members);
  EXPECT_EQ(reportFor(R.Manifest, "stale")->Status,
            MergeMemberStatus::Quarantined);
  EXPECT_EQ(reportFor(R.Manifest, "stale")->Reason,
            ProfileError::StaleGeneration);
  EXPECT_EQ(reportFor(R.Manifest, "legacy")->Status,
            MergeMemberStatus::Accepted);
  EXPECT_EQ(R.Manifest.Outcome, MergeOutcome::Merged);
}

TEST(AggregateTest, DriftOutlierIsQuarantinedWithQuorum) {
  std::vector<std::string> Sigs = {"a", "b", "c", "d"};
  std::vector<MemberProfile> Members = {
      makeMember("m0", Sigs, {8, 4, 2, 1}),
      makeMember("m1", Sigs, {9, 4, 2, 1}),
      makeMember("m2", Sigs, {8, 5, 2, 1}),
      makeMember("skewed", Sigs, {8 << 10, 4, 2 << 10, 1}),
  };
  MergeResult R = aggregateProfiles(Members);
  const MergeMemberReport *Rep = reportFor(R.Manifest, "skewed");
  EXPECT_EQ(Rep->Status, MergeMemberStatus::Quarantined);
  EXPECT_EQ(Rep->Reason, ProfileError::DriftOutlier);
  EXPECT_GT(Rep->DriftScore, 1.5);
  EXPECT_EQ(reportFor(R.Manifest, "m0")->Status, MergeMemberStatus::Accepted);
}

TEST(AggregateTest, DriftCheckSkippedBelowQuorum) {
  // With only two live members a median cannot separate honest from
  // skewed: both must survive rather than guess.
  std::vector<std::string> Sigs = {"a", "b", "c", "d"};
  std::vector<MemberProfile> Members = {
      makeMember("m0", Sigs, {8, 4, 2, 1}),
      makeMember("skewed", Sigs, {8 << 10, 4, 2 << 10, 1}),
  };
  MergeResult R = aggregateProfiles(Members);
  EXPECT_EQ(R.Manifest.countWithStatus(MergeMemberStatus::Quarantined), 0u);
  EXPECT_EQ(R.Manifest.Outcome, MergeOutcome::Merged);
}

TEST(AggregateTest, DriftGateNeverEmptiesTheSet) {
  // Three mutually-drifted members: the outlier gate may drop some but
  // must keep at least the lowest-scoring one (fail-open).
  std::vector<MemberProfile> Members = {
      makeMember("m0", {"a", "b", "c"}, {1 << 14, 1, 1}),
      makeMember("m1", {"a", "b", "c"}, {1, 1 << 14, 1}),
      makeMember("m2", {"a", "b", "c"}, {1, 1, 1 << 14}),
  };
  MergeResult R = aggregateProfiles(Members);
  EXPECT_NE(R.Manifest.Outcome, MergeOutcome::Fallback);
  EXPECT_LT(R.Manifest.countWithStatus(MergeMemberStatus::Quarantined), 3u);
}

//===----------------------------------------------------------------------===//
// Salvage classification.
//===----------------------------------------------------------------------===//

TEST(AggregateTest, PartialCoverageIsSalvagedNotQuarantined) {
  std::vector<MemberProfile> Members = {
      makeMember("full", {"a", "b"}),
      makeMember("partial", {"a", "b"}, {}, 0, 800),
  };
  MergeResult R = aggregateProfiles(Members);
  EXPECT_EQ(reportFor(R.Manifest, "partial")->Status,
            MergeMemberStatus::Salvaged);
  EXPECT_EQ(R.Manifest.Outcome, MergeOutcome::Merged);
}

TEST(AggregateTest, SkippedRowsAreSalvagedWithReason) {
  MemberProfile Good = makeMember("good", {"a", "b", "c"});
  // Append a malformed payload row *and* fix up nothing: fromCsv skips it
  // only when the CRC is recomputed, so build the text by hand.
  CodeProfile P;
  P.Header.Mode = TraceMode::CuOrder;
  P.Sigs = {"a", "b", "c"};
  std::string Csv = P.toCsv();
  // fromCsv treats a CRC-valid file with an over-wide row as salvage.
  MemberProfile Lossy = loadMemberProfile("lossy", Csv);
  ASSERT_EQ(Lossy.Profile.LoadError, ProfileError::None);
  Lossy.Read.RowsSkipped = 2; // As if two rows failed cell parsing.
  std::vector<MemberProfile> Members = {Good, Lossy};
  MergeResult R = aggregateProfiles(Members);
  const MergeMemberReport *Rep = reportFor(R.Manifest, "lossy");
  EXPECT_EQ(Rep->Status, MergeMemberStatus::Salvaged);
  EXPECT_EQ(Rep->Reason, ProfileError::MalformedCell);
}

//===----------------------------------------------------------------------===//
// Weight math: coverage x freshness decay.
//===----------------------------------------------------------------------===//

TEST(AggregateTest, WeightIsCoverageTimesFreshnessDecay) {
  std::vector<MemberProfile> Members = {
      makeMember("fresh-full", {"a", "b"}, {}, 100, 1000),
      makeMember("fresh-half", {"b", "a"}, {}, 100, 500),
      makeMember("lagged", {"a", "b"}, {}, 96, 1000), // One half-life back.
  };
  MergeResult R = aggregateProfiles(Members);
  EXPECT_DOUBLE_EQ(reportFor(R.Manifest, "fresh-full")->Weight, 1.0);
  EXPECT_DOUBLE_EQ(reportFor(R.Manifest, "fresh-half")->Weight, 0.5);
  EXPECT_DOUBLE_EQ(reportFor(R.Manifest, "lagged")->Weight, 0.5);
}

TEST(AggregateTest, QuarantinedMembersCarryZeroWeight) {
  std::vector<MemberProfile> Members = {
      makeMember("good", {"a"}),
      makeMember("thin", {"a"}, {}, 0, 10),
  };
  MergeResult R = aggregateProfiles(Members);
  EXPECT_DOUBLE_EQ(reportFor(R.Manifest, "thin")->Weight, 0.0);
}

//===----------------------------------------------------------------------===//
// The merge itself.
//===----------------------------------------------------------------------===//

TEST(AggregateTest, AgreeingMembersPreserveOrder) {
  std::vector<MemberProfile> Members = {
      makeMember("m0", {"a", "b", "c"}),
      makeMember("m1", {"a", "b", "c"}),
  };
  MergeResult R = aggregateProfiles(Members);
  ASSERT_EQ(R.Manifest.Outcome, MergeOutcome::Merged);
  EXPECT_EQ(R.Profile.Sigs, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(AggregateTest, HeavierMemberWinsDisagreements) {
  // m0 (weight 1.0) says b-first; m1 (weight ~0.25, two half-lives back)
  // says a-first. The merged head must follow m0.
  std::vector<MemberProfile> Members = {
      makeMember("m0", {"b", "a", "c"}, {}, 100),
      makeMember("m1", {"a", "b", "c"}, {}, 92),
  };
  MergeResult R = aggregateProfiles(Members);
  ASSERT_EQ(R.Manifest.Outcome, MergeOutcome::Merged);
  ASSERT_EQ(R.Profile.Sigs.size(), 3u);
  EXPECT_EQ(R.Profile.Sigs[0], "b");
}

TEST(AggregateTest, SigSeenByOneMemberRanksAfterConsensus) {
  // "z" appears only in m1's tail; members that never saw it vote "after
  // everything", so it cannot jump ahead of the consensus head.
  std::vector<MemberProfile> Members = {
      makeMember("m0", {"a", "b"}),
      makeMember("m1", {"a", "b", "z"}),
  };
  MergeResult R = aggregateProfiles(Members);
  ASSERT_EQ(R.Profile.Sigs.size(), 3u);
  EXPECT_EQ(R.Profile.Sigs[0], "a");
  EXPECT_EQ(R.Profile.Sigs[2], "z");
}

TEST(AggregateTest, MergedCarriesConsensusProvenance) {
  std::vector<MemberProfile> Members = {
      makeMember("m0", {"a"}, {4}, 100, 1000, 0xbeef),
      makeMember("m1", {"a"}, {6}, 103, 1000, 0xbeef),
  };
  MergeResult R = aggregateProfiles(Members);
  EXPECT_EQ(R.Profile.Header.Fingerprint, 0xbeefu);
  EXPECT_EQ(R.Profile.Header.Generation, 103u); // Newest live stamp.
  ASSERT_EQ(R.Profile.Counts.size(), 1u);
  // Weighted mean of 4 (w=0.594) and 6 (w=1.0) rounds to 5.
  EXPECT_EQ(R.Profile.Counts[0], 5u);
}

TEST(AggregateTest, DisagreeingFingerprintsMergeToUnknown) {
  std::vector<MemberProfile> Members = {
      makeMember("m0", {"a"}, {}, 0, 1000, 0x1111),
      makeMember("m1", {"a"}, {}, 0, 1000, 0x2222),
  };
  // No ExpectedFingerprint: both live, but their provenance conflicts.
  MergeResult R = aggregateProfiles(Members);
  EXPECT_EQ(R.Manifest.Outcome, MergeOutcome::Merged);
  EXPECT_EQ(R.Profile.Header.Fingerprint, 0u);
}

//===----------------------------------------------------------------------===//
// The degradation ladder.
//===----------------------------------------------------------------------===//

TEST(AggregateTest, LadderMergedToBestSingleToFallback) {
  MemberProfile Clean = makeMember("clean", {"a", "b"});
  MemberProfile Thin = makeMember("thin", {"a"}, {}, 0, 10);

  MergeResult Merged = aggregateProfiles({Clean, makeMember("c2", {"b", "a"})});
  EXPECT_EQ(Merged.Manifest.Outcome, MergeOutcome::Merged);
  EXPECT_TRUE(Merged.usable());

  MergeResult Single = aggregateProfiles({Clean, Thin});
  EXPECT_EQ(Single.Manifest.Outcome, MergeOutcome::BestSingle);
  EXPECT_TRUE(Single.usable());
  EXPECT_EQ(Single.Profile.Sigs, Clean.Profile.Sigs); // Verbatim survivor.

  MergeResult Fallback = aggregateProfiles({Thin, makeMember("thin2", {}, {}, 0, 0)});
  EXPECT_EQ(Fallback.Manifest.Outcome, MergeOutcome::Fallback);
  EXPECT_FALSE(Fallback.usable());
  EXPECT_TRUE(Fallback.Profile.Sigs.empty());

  MergeResult Empty = aggregateProfiles({});
  EXPECT_EQ(Empty.Manifest.Outcome, MergeOutcome::Fallback);
  EXPECT_FALSE(Empty.usable());
}

TEST(AggregateTest, MergeIsDeterministic) {
  std::vector<MemberProfile> Members = {
      makeMember("m0", {"b", "a", "c"}, {5, 3, 1}, 100),
      makeMember("m1", {"a", "c", "b"}, {4, 2, 2}, 101, 800),
      makeMember("m2", {"b", "c", "a"}, {6, 2, 1}, 99),
  };
  MergeResult First = aggregateProfiles(Members);
  MergeResult Second = aggregateProfiles(Members);
  EXPECT_EQ(First.Profile.toCsv(), Second.Profile.toCsv());
  ASSERT_EQ(First.Manifest.Members.size(), Second.Manifest.Members.size());
  for (size_t I = 0; I < First.Manifest.Members.size(); ++I) {
    EXPECT_EQ(First.Manifest.Members[I].Status,
              Second.Manifest.Members[I].Status);
    EXPECT_DOUBLE_EQ(First.Manifest.Members[I].Weight,
                     Second.Manifest.Members[I].Weight);
  }
}

//===----------------------------------------------------------------------===//
// Loaders: fail-open on unreadable input, deterministic dir listing.
//===----------------------------------------------------------------------===//

TEST(AggregateTest, UnreadableFileBecomesQuarantinedMember) {
  std::vector<MemberProfile> Members =
      loadMemberProfiles({"/nonexistent/path/cu.csv"});
  ASSERT_EQ(Members.size(), 1u);
  EXPECT_EQ(Members[0].Profile.LoadError, ProfileError::BadHeader);

  MergeResult R = aggregateProfiles(Members);
  EXPECT_EQ(R.Manifest.Outcome, MergeOutcome::Fallback);
  EXPECT_EQ(R.Manifest.Members[0].Status, MergeMemberStatus::Quarantined);
}

TEST(AggregateTest, MemberDirListingIsSortedAndFiltered) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "nimg_aggtest_dir";
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  for (const char *Name :
       {"cu_b.csv", "cu_a.csv", "method.csv", "cu_notes.txt", "cu.csv"})
    std::ofstream(Dir / Name) << "x";
  std::vector<std::string> Paths = listMemberProfileDir(Dir.string());
  ASSERT_EQ(Paths.size(), 3u);
  EXPECT_EQ(fs::path(Paths[0]).filename(), "cu.csv");
  EXPECT_EQ(fs::path(Paths[1]).filename(), "cu_a.csv");
  EXPECT_EQ(fs::path(Paths[2]).filename(), "cu_b.csv");
  fs::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// collectProfileSet: duplicate instance names are rejected with a typed
// error instead of silently producing a twin profile.
//===----------------------------------------------------------------------===//

const char *kTinyWorkload = R"(
class Helper {
  static int twice(int x) { return x * 2; }
}
class Main {
  static int main() {
    int t = 0;
    for (int i = 0; i < 4; i = i + 1) { t = t + Helper.twice(i); }
    Sys.print("t: " + t);
    return t;
  }
}
)";

TEST(CollectProfileSetTest, DuplicateInstanceNameIsTypedError) {
  Program P;
  std::vector<std::string> Errors;
  ASSERT_TRUE(compileSources({kTinyWorkload}, P, Errors));

  BuildConfig Cfg;
  Cfg.Seed = 1001;
  Cfg.ProfileGeneration = 100;
  std::vector<ProfileIssue> Issues;
  std::vector<MemberProfile> Members =
      collectProfileSet(P, Cfg, RunConfig(), {"a", "b", "a"}, &Issues);
  ASSERT_EQ(Members.size(), 3u);
  EXPECT_EQ(Members[0].Profile.LoadError, ProfileError::None);
  EXPECT_EQ(Members[1].Profile.LoadError, ProfileError::None);
  EXPECT_EQ(Members[2].Profile.LoadError, ProfileError::DuplicateMember);
  ASSERT_EQ(Issues.size(), 1u);
  EXPECT_EQ(Issues[0].Kind, ProfileError::DuplicateMember);

  // Generations are stamped monotonically from the configured base.
  EXPECT_EQ(Members[0].Profile.Header.Generation, 100u);
  EXPECT_EQ(Members[1].Profile.Header.Generation, 101u);

  // And the aggregate of such a set quarantines exactly the twin.
  MergeResult R = aggregateProfiles(Members);
  EXPECT_EQ(R.Manifest.Outcome, MergeOutcome::Merged);
  EXPECT_EQ(R.Manifest.Members[2].Status, MergeMemberStatus::Quarantined);
  EXPECT_EQ(R.Manifest.Members[2].Reason, ProfileError::DuplicateMember);
}

TEST(CollectProfileSetTest, SetFeedsBuildEndToEnd) {
  Program P;
  std::vector<std::string> Errors;
  ASSERT_TRUE(compileSources({kTinyWorkload}, P, Errors));

  BuildConfig ProfCfg;
  ProfCfg.Seed = 1001;
  ProfCfg.ProfileGeneration = 7;
  std::vector<MemberProfile> Members =
      collectProfileSet(P, ProfCfg, RunConfig(), {"a", "b"});

  BuildConfig Cfg;
  Cfg.CodeOrder = CodeStrategy::CuOrder;
  Cfg.CodeMembers = &Members;
  NativeImage Img = buildNativeImage(P, Cfg);
  EXPECT_FALSE(Img.Built.Failed) << Img.Built.FailureMessage;
  EXPECT_TRUE(Img.ProfileDiag.CodeProfileApplied);
  EXPECT_EQ(Img.ProfileDiag.Merge.Outcome, MergeOutcome::Merged);
}

//===----------------------------------------------------------------------===//
// Atomic writes.
//===----------------------------------------------------------------------===//

TEST(AtomicFileTest, WriteLandsAndLeavesNoTemp) {
  namespace fs = std::filesystem;
  fs::path Path = fs::temp_directory_path() / "nimg_atomic_basic.txt";
  fs::remove(Path);
  EXPECT_TRUE(atomicWriteFile(Path.string(), "hello"));
  std::ifstream In(Path);
  std::string Got((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(Got, "hello");
  EXPECT_FALSE(fs::exists(Path.string() + ".tmp"));
  fs::remove(Path);
}

TEST(AtomicFileTest, KilledWriteLeavesOldContentIntact) {
  namespace fs = std::filesystem;
  fs::path Path = fs::temp_directory_path() / "nimg_atomic_kill.txt";
  ASSERT_TRUE(atomicWriteFile(Path.string(), "old content survives"));

  setAtomicWriteTruncationForTest(4); // Crash after four bytes.
  EXPECT_FALSE(atomicWriteFile(Path.string(), "new content that dies"));

  std::ifstream In(Path);
  std::string Got((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(Got, "old content survives");
  EXPECT_FALSE(fs::exists(Path.string() + ".tmp"));

  // One-shot: the next write goes through untouched.
  EXPECT_TRUE(atomicWriteFile(Path.string(), "second try"));
  std::ifstream In2(Path);
  std::string Got2((std::istreambuf_iterator<char>(In2)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(Got2, "second try");
  fs::remove(Path);
}

} // namespace
