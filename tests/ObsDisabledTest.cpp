//===- ObsDisabledTest.cpp - NIMG_OBS_DISABLED compile-out tests ------------===//
//
// This TU compiles the observability macros with NIMG_OBS_DISABLED defined
// (the classes themselves are identical in both modes, so mixing this TU
// with enabled TUs in one binary is ODR-safe — only the macros change).
// It proves the disabled expansions are true no-ops: macro arguments are
// never evaluated, nothing reaches the global registry or tracer, and the
// macros still parse as single statements in unbraced if/else bodies.
//
//===----------------------------------------------------------------------===//

#ifndef NIMG_OBS_DISABLED
#define NIMG_OBS_DISABLED
#endif
#include "src/obs/Metrics.h"
#include "src/obs/SpanTracer.h"

#include <gtest/gtest.h>

#include <string>

using namespace nimg::obs;

static_assert(NIMG_OBS_ENABLED == 0,
              "this TU must compile with observability disabled");

namespace {

int SideEffects = 0;

std::string namedWithSideEffect() {
  ++SideEffects;
  return "obs.test.disabled_span";
}

} // namespace

TEST(ObsDisabled, MacroArgumentsAreNeverEvaluated) {
  SideEffects = 0;
  int Calls = 0;
  NIMG_COUNTER_ADD("obs.test.disabled_counter", ++Calls);
  NIMG_COUNTER_ADD_DYN(namedWithSideEffect(), ++Calls);
  NIMG_GAUGE_SET("obs.test.disabled_gauge", ++Calls);
  NIMG_HIST_RECORD("obs.test.disabled_hist", ++Calls);
  NIMG_SPAN("pipeline", namedWithSideEffect());
  {
    NIMG_SPAN_NAMED(Span, "pipeline", namedWithSideEffect());
    NIMG_SPAN_ARG(Span, std::string("key"), namedWithSideEffect());
  }
  EXPECT_EQ(Calls, 0);
  EXPECT_EQ(SideEffects, 0);
}

TEST(ObsDisabled, NothingReachesTheGlobalRegistry) {
  size_t Before = MetricsRegistry::global().size();
  NIMG_COUNTER_ADD("obs.test.disabled_registry_probe", 1);
  NIMG_GAUGE_SET("obs.test.disabled_registry_probe_g", 1);
  NIMG_HIST_RECORD("obs.test.disabled_registry_probe_h", 1);
  EXPECT_EQ(MetricsRegistry::global().size(), Before);
  EXPECT_FALSE(
      MetricsRegistry::global().has("obs.test.disabled_registry_probe"));
}

TEST(ObsDisabled, NoSpansRecordedEvenWhenTracerEnabled) {
  SpanTracer &T = SpanTracer::global();
  T.clear();
  bool WasEnabled = T.enabled();
  T.setEnabled(true);
  {
    NIMG_SPAN("pipeline", "disabled-tu-span");
    NIMG_SPAN_NAMED(S, "pipeline", "disabled-tu-span2");
    NIMG_SPAN_ARG(S, "k", "v");
  }
  EXPECT_EQ(T.eventCount(), 0u);
  T.setEnabled(WasEnabled);
  T.clear();
}

TEST(ObsDisabled, MacrosAreSingleStatements) {
  // Compile-shape check: the disabled forms must behave as one statement.
  bool Flag = true;
  if (Flag)
    NIMG_COUNTER_ADD("obs.test.stmt", 1);
  else
    NIMG_HIST_RECORD("obs.test.stmt", 2);
  if (!Flag)
    NIMG_SPAN("pipeline", "stmt");
  SUCCEED();
}

TEST(ObsDisabled, ClassesStillWorkDirectly) {
  // Compile-out removes the macro plumbing, not the library: explicit use
  // of the classes (e.g. by the startup report) keeps working.
  Counter C;
  C.add(5);
  EXPECT_EQ(C.value(), 5u);
  Histogram H;
  H.record(9);
  EXPECT_EQ(H.bucketCount(Histogram::bucketOf(9)), 1u);
}
