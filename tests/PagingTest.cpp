//===- PagingTest.cpp - Page-cache simulator tests ---------------------------===//

#include "src/runtime/Paging.h"

#include <gtest/gtest.h>

using namespace nimg;

namespace {

PagingConfig cfg(uint32_t Readahead) {
  PagingConfig C;
  C.ReadaheadPages = Readahead;
  return C;
}

} // namespace

TEST(Paging, FirstTouchFaultsOncePerCluster) {
  PagingSim P(64 * 4096, 0, cfg(4));
  P.touch(ImageSection::Text, 0, 1);
  EXPECT_EQ(P.faults(ImageSection::Text), 1u);
  // The rest of the aligned 4-page cluster is resident now.
  P.touch(ImageSection::Text, 3 * 4096, 100);
  EXPECT_EQ(P.faults(ImageSection::Text), 1u);
  // The next cluster faults again.
  P.touch(ImageSection::Text, 4 * 4096, 1);
  EXPECT_EQ(P.faults(ImageSection::Text), 2u);
}

TEST(Paging, RangeTouchSpansPages) {
  PagingSim P(64 * 4096, 0, cfg(1));
  P.touch(ImageSection::Text, 4090, 20); // crosses a page boundary
  EXPECT_EQ(P.faults(ImageSection::Text), 2u);
}

TEST(Paging, ZeroLengthTouchIsNoop) {
  PagingSim P(16 * 4096, 16 * 4096, cfg(4));
  P.touch(ImageSection::Text, 0, 0);
  EXPECT_EQ(P.totalFaults(), 0u);
}

TEST(Paging, OutOfRangeTouchIsClamped) {
  PagingSim P(4 * 4096, 0, cfg(4));
  P.touch(ImageSection::Text, 100 * 4096, 10); // beyond the section
  EXPECT_EQ(P.faults(ImageSection::Text), 0u);
  P.touch(ImageSection::Text, 3 * 4096, 2 * 4096); // tail-clamped
  EXPECT_EQ(P.faults(ImageSection::Text), 1u);
}

TEST(Paging, SectionsAreIndependent) {
  PagingSim P(8 * 4096, 8 * 4096, cfg(1));
  P.touch(ImageSection::Text, 0, 1);
  P.touch(ImageSection::HeapSec, 0, 1);
  P.touch(ImageSection::HeapSec, 4096, 1);
  EXPECT_EQ(P.faults(ImageSection::Text), 1u);
  EXPECT_EQ(P.faults(ImageSection::HeapSec), 2u);
}

TEST(Paging, PageStatesMatchFig6Convention) {
  PagingSim P(8 * 4096, 0, cfg(4));
  P.touch(ImageSection::Text, 4096, 1); // page 1 faults; cluster 0..3 loads
  const auto &S = P.pageStates(ImageSection::Text);
  EXPECT_EQ(S[1], PageState::Faulted);
  EXPECT_EQ(S[0], PageState::Prefetched);
  EXPECT_EQ(S[2], PageState::Prefetched);
  EXPECT_EQ(S[4], PageState::Untouched);
  // Touching a prefetched page later does not fault and keeps it "red".
  P.touch(ImageSection::Text, 2 * 4096, 1);
  EXPECT_EQ(P.faults(ImageSection::Text), 1u);
  EXPECT_EQ(S[2], PageState::Prefetched);
}

TEST(Paging, DropCachesEvictsEverything) {
  PagingSim P(8 * 4096, 0, cfg(2));
  P.touch(ImageSection::Text, 0, 4096);
  uint64_t First = P.faults(ImageSection::Text);
  P.touch(ImageSection::Text, 0, 4096);
  EXPECT_EQ(P.faults(ImageSection::Text), First); // still cached
  P.dropCaches();
  P.touch(ImageSection::Text, 0, 4096);
  EXPECT_EQ(P.faults(ImageSection::Text), First * 2);
}

TEST(Paging, PrefetchCounterCounts) {
  PagingSim P(16 * 4096, 0, cfg(8));
  P.touch(ImageSection::Text, 0, 1);
  EXPECT_EQ(P.prefetchedPages(), 7u); // 8-page cluster minus the fault
}

TEST(Paging, PrefetchedNotDoubleCountedAfterEviction) {
  PagingSim P(16 * 4096, 0, cfg(4));
  P.touch(ImageSection::Text, 0, 1); // fault page 0, prefetch 1..3
  EXPECT_EQ(P.prefetchedPages(), 3u);
  P.dropCaches();
  // Evicted prefetched pages are gone from the resident-prefetched
  // population...
  EXPECT_EQ(P.prefetchedPages(), 0u);
  // ...and faulting one afterwards counts it as a fault only.
  P.touch(ImageSection::Text, 4096, 1);
  EXPECT_EQ(P.faults(ImageSection::Text), 2u);
  const auto &S = P.pageStates(ImageSection::Text);
  EXPECT_EQ(S[1], PageState::Faulted);
  // Pages 0, 2, 3 were re-prefetched by the second fault's cluster.
  EXPECT_EQ(P.prefetchedPages(), 3u);
  // The cumulative event counter keeps the full history: 3 + 3.
  EXPECT_EQ(P.counters().PrefetchEvents, 6u);
}

TEST(Paging, CountersSnapshotAndDelta) {
  PagingSim P(32 * 4096, 32 * 4096, cfg(4));
  P.touch(ImageSection::Text, 0, 4 * 4096);
  PagingCounters Before = P.counters();
  EXPECT_EQ(Before.TextFaults, 1u);
  EXPECT_EQ(Before.HeapFaults, 0u);

  // "Phase 2": more text + first heap activity, plus an eviction cycle.
  P.touch(ImageSection::Text, 8 * 4096, 1);
  P.touch(ImageSection::HeapSec, 0, 1);
  P.dropCaches();
  P.touch(ImageSection::HeapSec, 0, 1);

  PagingCounters Delta = P.deltaSince(Before);
  EXPECT_EQ(Delta.TextFaults, 1u);
  EXPECT_EQ(Delta.HeapFaults, 2u);
  EXPECT_EQ(Delta.totalFaults(), 3u);
  EXPECT_EQ(Delta.EvictedPages, 12u); // 2 text clusters + 1 heap cluster
  // Deltas line up with the absolute counters.
  PagingCounters After = P.counters();
  EXPECT_EQ(After.TextFaults - Before.TextFaults, Delta.TextFaults);
  EXPECT_EQ(After.PrefetchEvents - Before.PrefetchEvents,
            Delta.PrefetchEvents);
  // Snapshots are pure reads: the page-state map is untouched by them.
  EXPECT_EQ(P.pageStates(ImageSection::HeapSec)[0], PageState::Faulted);
}

TEST(Paging, ResidentListTracksFaultsAndPrefetch) {
  PagingSim P(64 * 4096, 8 * 4096, cfg(4));
  EXPECT_EQ(P.residentPages(ImageSection::Text), 0u);
  P.touch(ImageSection::Text, 0, 1); // fault + 3 prefetched
  EXPECT_EQ(P.residentPages(ImageSection::Text), 4u);
  P.touch(ImageSection::Text, 4096, 1); // already resident: no growth
  EXPECT_EQ(P.residentPages(ImageSection::Text), 4u);
  P.touch(ImageSection::HeapSec, 0, 1);
  EXPECT_EQ(P.residentPages(ImageSection::HeapSec), 4u);
  EXPECT_EQ(P.residentPages(ImageSection::Text), 4u);
  P.dropCaches();
  EXPECT_EQ(P.residentPages(ImageSection::Text), 0u);
  EXPECT_EQ(P.residentPages(ImageSection::HeapSec), 0u);
}

TEST(Paging, RepeatedEvictionCyclesStayConsistent) {
  // The eviction walk visits the intrusive resident list, which must be
  // rebuilt correctly across many fault/evict cycles (a stale link would
  // assert or mis-count EvictedPages).
  PagingSim P(32 * 4096, 0, cfg(2));
  for (int Cycle = 0; Cycle < 10; ++Cycle) {
    P.touch(ImageSection::Text, uint64_t(Cycle % 4) * 8 * 4096, 3 * 4096);
    EXPECT_EQ(P.residentPages(ImageSection::Text), 4u);
    P.dropCaches();
    EXPECT_EQ(P.residentPages(ImageSection::Text), 0u);
  }
  EXPECT_EQ(P.counters().EvictedPages, 40u);
  EXPECT_EQ(P.faults(ImageSection::Text), 20u); // 2 clusters per cycle
}

TEST(Paging, ColdRegionAttributesTextFaults) {
  PagingSim P(16 * 4096, 8 * 4096, cfg(1));
  P.setTextColdRegion(8 * 4096, 4 * 4096); // pages 8..11 are the cold tail
  P.touch(ImageSection::Text, 0, 1);       // hot fault
  EXPECT_EQ(P.counters().TextColdFaults, 0u);
  P.touch(ImageSection::Text, 8 * 4096, 1); // cold fault
  P.touch(ImageSection::Text, 11 * 4096, 1);
  EXPECT_EQ(P.counters().TextColdFaults, 2u);
  P.touch(ImageSection::Text, 12 * 4096, 1); // past the cold tail: hot
  EXPECT_EQ(P.counters().TextColdFaults, 2u);
  // Heap faults never count as cold text.
  P.touch(ImageSection::HeapSec, 8 * 4096 % (8 * 4096), 1);
  EXPECT_EQ(P.counters().TextColdFaults, 2u);
  EXPECT_EQ(P.faults(ImageSection::Text), 4u);
}

TEST(Paging, ColdRegionRefaultsAfterEviction) {
  PagingSim P(16 * 4096, 0, cfg(1));
  P.setTextColdRegion(4 * 4096, 4096);
  P.touch(ImageSection::Text, 4 * 4096, 1);
  P.touch(ImageSection::Text, 4 * 4096, 1); // resident: no second fault
  EXPECT_EQ(P.counters().TextColdFaults, 1u);
  P.dropCaches();
  P.touch(ImageSection::Text, 4 * 4096, 1);
  EXPECT_EQ(P.counters().TextColdFaults, 2u);
}

TEST(Paging, EmptyColdRegionCountsNothing) {
  PagingSim P(8 * 4096, 0, cfg(1));
  P.setTextColdRegion(2 * 4096, 0); // zero-size region is inert
  P.touch(ImageSection::Text, 2 * 4096, 4096);
  EXPECT_EQ(P.counters().TextColdFaults, 0u);
}

class PagingSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PagingSweepTest, SequentialScanFaultsOncePerCluster) {
  uint32_t Window = GetParam();
  const uint64_t Pages = 64;
  PagingSim P(Pages * 4096, 0, cfg(Window));
  for (uint64_t Pg = 0; Pg < Pages; ++Pg)
    P.touch(ImageSection::Text, Pg * 4096, 4096);
  EXPECT_EQ(P.faults(ImageSection::Text), (Pages + Window - 1) / Window);
  EXPECT_EQ(P.prefetchedPages(), Pages - P.faults(ImageSection::Text));
}

INSTANTIATE_TEST_SUITE_P(Windows, PagingSweepTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));
