//===- FaultInjectionTest.cpp - Crash-tolerance of the profile pipeline ------===//
//
// Seeded fault-injection scenarios for the whole profile pipeline: traces
// truncated mid-record (SIGKILL between mmap page syncs), bit-flipped
// trace words, dropped per-thread trace files, and profile CSVs truncated
// or bit-flipped at arbitrary byte offsets. Every scenario must end in a
// *completed* optimizing build — salvaging what is valid or degrading to
// the default layout with diagnostics — never a crash or assert.
//
//===----------------------------------------------------------------------===//

#include "src/compiler/Inliner.h"
#include "src/core/Builder.h"
#include "src/image/ImageFile.h"
#include "src/lang/Compile.h"
#include "src/obs/Json.h"
#include "src/obs/StartupReport.h"
#include "src/support/AtomicFile.h"
#include "src/support/Crc32.h"
#include "src/support/FaultInjection.h"
#include "src/support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

using namespace nimg;

namespace {

const char *kWorkload = R"(
abstract class Shape {
  abstract double area();
}
class Circle extends Shape {
  double r;
  Circle(double r) { this.r = r; }
  double area() { return 3.14159 * r * r; }
}
class Rect extends Shape {
  double w; double h;
  Rect(double w, double h) { this.w = w; this.h = h; }
  double area() { return w * h; }
}
class Registry {
  static String banner = "fault registry v" + 1;
  static int created = 0;
  static int[] histogram = new int[16];
  static { histogram[0] = 1; }
  static void note(int kind) {
    created = created + 1;
    histogram[kind] = histogram[kind] + 1;
  }
}
class Main {
  static double work() {
    Shape[] shapes = new Shape[24];
    for (int i = 0; i < shapes.length; i = i + 1) {
      if (i % 2 == 0) {
        shapes[i] = new Circle(1.0 + i);
        Registry.note(0);
      } else {
        shapes[i] = new Rect(2.0, 1.0 + i);
        Registry.note(1);
      }
    }
    double total = 0.0;
    for (int i = 0; i < shapes.length; i = i + 1) {
      total = total + shapes[i].area();
    }
    return total;
  }
  static int main() {
    double t = work();
    Sys.print(Registry.banner + ": " + Registry.created);
    return (int) t;
  }
}
)";

/// Shared, build-once corpus: the program, one instrumented image, one
/// pristine capture per trace mode, collected profiles, and the baseline
/// optimizing build's output. Faults are applied to copies.
struct Corpus {
  Program P;
  NativeImage InstrImg;
  PathGraphCache Paths;
  TraceCapture Caps[4]; ///< Indexed by TraceMode (incl. Sampled).
  CollectedProfiles Prof;
  uint64_t Fp = 0;
  std::string BaselineOutput;

  Corpus() : Paths(P) {
    std::vector<std::string> Errors;
    if (!compileSources({kWorkload}, P, Errors)) {
      for (const std::string &E : Errors)
        ADD_FAILURE() << E;
      return;
    }
    BuildConfig ICfg;
    ICfg.Seed = 1001;
    ICfg.Instrumented = true;
    InstrImg = buildNativeImage(P, ICfg);
    EXPECT_FALSE(InstrImg.Built.Failed) << InstrImg.Built.FailureMessage;
    for (TraceMode Mode : {TraceMode::CuOrder, TraceMode::MethodOrder,
                           TraceMode::HeapOrder, TraceMode::Sampled}) {
      TraceOptions TOpts;
      TOpts.Mode = Mode;
      TOpts.Dump = DumpMode::MemoryMapped;
      // The workload is small; the default period would tick at most a
      // couple of times, leaving too few sample words to corrupt.
      TOpts.SamplePeriod = 128;
      RunConfig RC;
      RC.Trace = &TOpts;
      RunStats S = runImage(InstrImg, RC, &Caps[size_t(Mode)]);
      EXPECT_FALSE(S.Trapped) << S.TrapMessage;
      EXPECT_GT(Caps[size_t(Mode)].totalWords(), 0u);
    }
    BuildConfig PCfg;
    PCfg.Seed = 1001;
    Prof = collectProfiles(P, PCfg, RunConfig());
    Fp = programFingerprint(P);

    BuildConfig Base;
    Base.Seed = 2;
    NativeImage Baseline = buildNativeImage(P, Base);
    RunStats BS = runImage(Baseline, RunConfig());
    EXPECT_FALSE(BS.Trapped) << BS.TrapMessage;
    BaselineOutput = BS.Output;
  }
};

Corpus &corpus() {
  static Corpus *C = new Corpus();
  return *C;
}

/// One seeded trace-fault scenario: corrupt a pristine capture, analyze it
/// (salvaging), and feed the result through a full optimizing build.
void runTraceScenario(uint64_t Seed, TraceMode Mode, TraceFault Kind,
                      bool AlsoRun) {
  Corpus &C = corpus();
  SCOPED_TRACE(::testing::Message()
               << "seed=" << Seed << " mode=" << int(Mode)
               << " fault=" << int(Kind));
  TraceCapture Cap = C.Caps[size_t(Mode)];
  FaultInjector Inj(Seed);
  Inj.applyTraceFault(Cap, Kind);

  SalvageStats Stats;
  CodeProfile CodeProf;
  HeapProfile HeapProf;
  BuildConfig Cfg;
  Cfg.Seed = 2 + Seed;
  switch (Mode) {
  case TraceMode::CuOrder:
    CodeProf = analyzeCuOrder(C.P, Cap, &Stats);
    CodeProf.Header.Fingerprint = C.Fp;
    Cfg.CodeOrder = CodeStrategy::CuOrder;
    Cfg.CodeProf = &CodeProf;
    break;
  case TraceMode::MethodOrder:
    CodeProf = analyzeMethodOrder(C.P, Cap, C.Paths, &Stats);
    CodeProf.Header.Fingerprint = C.Fp;
    Cfg.CodeOrder = CodeStrategy::MethodOrder;
    Cfg.CodeProf = &CodeProf;
    break;
  case TraceMode::HeapOrder: {
    std::vector<int32_t> Order =
        analyzeHeapAccessOrder(C.P, Cap, C.Paths, &Stats);
    HeapProf = heapProfileFor(Order, C.InstrImg.Ids, HeapStrategy::HeapPath);
    HeapProf.Header.Fingerprint = C.Fp;
    Cfg.UseHeapOrder = true;
    Cfg.HeapOrder = HeapStrategy::HeapPath;
    Cfg.HeapProf = &HeapProf;
    break;
  }
  case TraceMode::Sampled:
    // A corrupted sampled capture feeds the cu ingestion path, exactly as
    // a fleet member's damaged upload would.
    CodeProf = analyzeSampledCuOrder(C.P, Cap, &Stats);
    CodeProf.Header.Fingerprint = C.Fp;
    Cfg.CodeOrder = CodeStrategy::CuOrder;
    Cfg.CodeProf = &CodeProf;
    break;
  }

  // Salvage-stats invariants.
  EXPECT_FALSE(Stats.ModeMismatch);
  EXPECT_EQ(Stats.WordsScanned, Cap.totalWords());
  EXPECT_EQ(Stats.WordsKept + Stats.WordsDropped, Stats.WordsScanned);

  // A salvaged copy accounts for exactly the kept words and re-scans clean.
  SalvageStats First, Second;
  TraceCapture Clean = salvageCapture(C.P, Cap, C.Paths, First);
  EXPECT_EQ(Clean.totalWords(), First.WordsKept);
  scanCapture(C.P, Clean, C.Paths, Second);
  EXPECT_TRUE(Second.clean());

  // The optimizing build always completes; a fault-free-looking salvaged
  // profile is applied, never crashes the pipeline.
  NativeImage Img = buildNativeImage(C.P, Cfg);
  ASSERT_FALSE(Img.Built.Failed) << Img.Built.FailureMessage;
  EXPECT_TRUE(Img.ProfileDiag.CodeProfileApplied ||
              Img.ProfileDiag.HeapProfileApplied ||
              !Img.ProfileDiag.Issues.empty() ||
              (!Img.ProfileDiag.CodeProfileProvided &&
               !Img.ProfileDiag.HeapProfileProvided));
  if (AlsoRun) {
    RunStats S = runImage(Img, RunConfig());
    EXPECT_FALSE(S.Trapped) << S.TrapMessage;
    EXPECT_EQ(S.Output, C.BaselineOutput);
  }
}

} // namespace

// 12 seeds x 4 modes x 3 fault kinds = 144 seeded trace scenarios.
TEST(FaultInjection, TraceFaultMatrixSurvivesOptimizingBuild) {
  for (uint64_t Seed = 1; Seed <= 12; ++Seed)
    for (TraceMode Mode : {TraceMode::CuOrder, TraceMode::MethodOrder,
                           TraceMode::HeapOrder, TraceMode::Sampled})
      for (TraceFault Kind : {TraceFault::TruncateMidRecord,
                              TraceFault::BitFlip, TraceFault::DropThread})
        runTraceScenario(Seed, Mode, Kind, /*AlsoRun=*/Seed % 4 == 0);
}

// Cluster analysis consumes the same cu-mode captures; every trace fault
// must still yield a profile that is a permutation of the salvaged cu
// profile (or an explicit fallback) and feed a completed cluster build.
TEST(FaultInjection, ClusterAnalysisSurvivesTraceFaults) {
  Corpus &C = corpus();
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    for (TraceFault Kind : {TraceFault::TruncateMidRecord, TraceFault::BitFlip,
                            TraceFault::DropThread}) {
      SCOPED_TRACE(::testing::Message()
                   << "seed=" << Seed << " fault=" << int(Kind));
      TraceCapture Cap = C.Caps[size_t(TraceMode::CuOrder)];
      FaultInjector Inj(Seed);
      Inj.applyTraceFault(Cap, Kind);

      CodeProfile CuProf = analyzeCuOrder(C.P, Cap);
      std::vector<ProfileIssue> Issues;
      ClusterStats Stats;
      CodeProfile Prof =
          analyzeClusterOrder(C.P, Cap, C.InstrImg.Code, ClusterOptions(),
                              nullptr, &Issues, &Stats);
      std::vector<std::string> A = CuProf.Sigs, B = Prof.Sigs;
      std::sort(A.begin(), A.end());
      std::sort(B.begin(), B.end());
      EXPECT_EQ(A, B);
      if (Stats.FellBack) {
        ASSERT_FALSE(Issues.empty());
        EXPECT_EQ(Issues[0].Kind, ProfileError::EmptyTransitionGraph);
      }

      Prof.Header.Fingerprint = C.Fp;
      BuildConfig Cfg;
      Cfg.Seed = 5 + Seed;
      Cfg.CodeOrder = CodeStrategy::Cluster;
      Cfg.CodeProf = &Prof;
      NativeImage Img = buildNativeImage(C.P, Cfg);
      ASSERT_FALSE(Img.Built.Failed) << Img.Built.FailureMessage;
      if (Seed % 4 == 0) {
        RunStats S = runImage(Img, RunConfig());
        EXPECT_FALSE(S.Trapped) << S.TrapMessage;
        EXPECT_EQ(S.Output, C.BaselineOutput);
      }
    }
  }
}

// 10 seeds x 3 profile files x 2 text faults = 60 seeded CSV scenarios.
TEST(FaultInjection, CsvFaultMatrixSurvivesIngestionAndBuild) {
  Corpus &C = corpus();
  const std::string Sources[3] = {C.Prof.Cu.toCsv(), C.Prof.Method.toCsv(),
                                  C.Prof.HeapPath.toCsv()};
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    for (int Src = 0; Src < 3; ++Src) {
      for (int FaultKind = 0; FaultKind < 2; ++FaultKind) {
        SCOPED_TRACE(::testing::Message() << "seed=" << Seed << " src=" << Src
                                          << " fault=" << FaultKind);
        std::string Text = Sources[size_t(Src)];
        FaultInjector Inj(Seed * 97 + uint64_t(Src) * 7 + uint64_t(FaultKind));
        if (FaultKind == 0)
          Inj.truncateText(Text);
        else
          Inj.bitFlipText(Text, 1 + Inj.nextBelow(4));

        // Ingestion never crashes; it either yields a usable profile or a
        // typed fatal error.
        ProfileReadReport Report;
        CodeProfile CodeProf;
        HeapProfile HeapProf;
        BuildConfig Cfg;
        Cfg.Seed = 3 + Seed;
        if (Src < 2) {
          CodeProf = CodeProfile::fromCsv(Text, &Report);
          EXPECT_EQ(CodeProf.LoadError, Report.Fatal);
          Cfg.CodeOrder =
              Src == 0 ? CodeStrategy::CuOrder : CodeStrategy::MethodOrder;
          Cfg.CodeProf = &CodeProf;
        } else {
          HeapProf = HeapProfile::fromCsv(Text, &Report);
          EXPECT_EQ(HeapProf.LoadError, Report.Fatal);
          Cfg.UseHeapOrder = true;
          Cfg.HeapOrder = HeapStrategy::HeapPath;
          Cfg.HeapProf = &HeapProf;
        }

        // The optimizing build completes either way; a rejected profile
        // must leave a recorded reason.
        NativeImage Img = buildNativeImage(C.P, Cfg);
        ASSERT_FALSE(Img.Built.Failed) << Img.Built.FailureMessage;
        EXPECT_TRUE(Img.ProfileDiag.CodeProfileProvided ||
                    Img.ProfileDiag.HeapProfileProvided);
        if (Img.ProfileDiag.degraded())
          EXPECT_FALSE(Img.ProfileDiag.Issues.empty());
        if (!Report.usable())
          EXPECT_TRUE(Img.ProfileDiag.degraded());
      }
    }
  }
}

TEST(FaultInjection, FaultsAreDeterministicPerSeed) {
  Corpus &C = corpus();
  for (uint64_t Seed : {3u, 17u, 255u}) {
    TraceCapture A = C.Caps[size_t(TraceMode::HeapOrder)];
    TraceCapture B = C.Caps[size_t(TraceMode::HeapOrder)];
    FaultInjector IA(Seed), IB(Seed);
    IA.applyTraceFault(A, TraceFault::BitFlip);
    IB.applyTraceFault(B, TraceFault::BitFlip);
    ASSERT_EQ(A.Threads.size(), B.Threads.size());
    for (size_t T = 0; T < A.Threads.size(); ++T)
      EXPECT_EQ(A.Threads[T].Words, B.Threads[T].Words);

    std::string TA = C.Prof.Cu.toCsv(), TB = C.Prof.Cu.toCsv();
    FaultInjector JA(Seed), JB(Seed);
    JA.bitFlipText(TA, 3);
    JB.bitFlipText(TB, 3);
    EXPECT_EQ(TA, TB);
  }
}

TEST(FaultInjection, ChecksumMismatchIsDetected) {
  Corpus &C = corpus();
  std::string Text = C.Prof.Cu.toCsv();
  size_t Nl = Text.find('\n');
  ASSERT_NE(Nl, std::string::npos);
  ASSERT_LT(Nl + 1, Text.size());
  Text[Nl + 1] = Text[Nl + 1] == 'X' ? 'Y' : 'X'; // corrupt the payload
  ProfileReadReport Report;
  CodeProfile P = CodeProfile::fromCsv(Text, &Report);
  EXPECT_EQ(Report.Fatal, ProfileError::ChecksumMismatch);
  EXPECT_EQ(P.LoadError, ProfileError::ChecksumMismatch);
  EXPECT_TRUE(P.Sigs.empty());

  BuildConfig Cfg;
  Cfg.CodeOrder = CodeStrategy::CuOrder;
  Cfg.CodeProf = &P;
  NativeImage Img = buildNativeImage(C.P, Cfg);
  ASSERT_FALSE(Img.Built.Failed);
  EXPECT_TRUE(Img.ProfileDiag.degraded());
  ASSERT_FALSE(Img.ProfileDiag.Issues.empty());
  EXPECT_EQ(Img.ProfileDiag.Issues[0].Kind, ProfileError::ChecksumMismatch);
}

TEST(FaultInjection, StaleFingerprintIsRejected) {
  Corpus &C = corpus();
  CodeProfile Stale = C.Prof.Cu;
  Stale.Header.Fingerprint ^= 0x1; // a profile from a "different" program
  BuildConfig Cfg;
  Cfg.CodeOrder = CodeStrategy::CuOrder;
  Cfg.CodeProf = &Stale;
  NativeImage Img = buildNativeImage(C.P, Cfg);
  ASSERT_FALSE(Img.Built.Failed);
  EXPECT_FALSE(Img.ProfileDiag.CodeProfileApplied);
  ASSERT_FALSE(Img.ProfileDiag.Issues.empty());
  EXPECT_EQ(Img.ProfileDiag.Issues[0].Kind,
            ProfileError::FingerprintMismatch);

  // The matching fingerprint is accepted.
  BuildConfig Ok = Cfg;
  Ok.CodeProf = &C.Prof.Cu;
  NativeImage Img2 = buildNativeImage(C.P, Ok);
  EXPECT_TRUE(Img2.ProfileDiag.CodeProfileApplied);
  EXPECT_FALSE(Img2.ProfileDiag.degraded());
}

TEST(FaultInjection, ModeAndStrategyMismatchesAreRejected) {
  Corpus &C = corpus();
  // A cu-mode profile cannot drive method ordering.
  BuildConfig MCfg;
  MCfg.CodeOrder = CodeStrategy::MethodOrder;
  MCfg.CodeProf = &C.Prof.Cu;
  NativeImage MImg = buildNativeImage(C.P, MCfg);
  ASSERT_FALSE(MImg.Built.Failed);
  EXPECT_FALSE(MImg.ProfileDiag.CodeProfileApplied);
  ASSERT_FALSE(MImg.ProfileDiag.Issues.empty());
  EXPECT_EQ(MImg.ProfileDiag.Issues[0].Kind, ProfileError::ModeMismatch);

  // An incremental-id profile cannot drive heap-path matching.
  BuildConfig HCfg;
  HCfg.UseHeapOrder = true;
  HCfg.HeapOrder = HeapStrategy::HeapPath;
  HCfg.HeapProf = &C.Prof.IncrementalId;
  NativeImage HImg = buildNativeImage(C.P, HCfg);
  ASSERT_FALSE(HImg.Built.Failed);
  EXPECT_FALSE(HImg.ProfileDiag.HeapProfileApplied);
  ASSERT_FALSE(HImg.ProfileDiag.Issues.empty());
  EXPECT_EQ(HImg.ProfileDiag.Issues[0].Kind, ProfileError::StrategyMismatch);
}

TEST(FaultInjection, UnsupportedVersionIsRejectedLegacyAccepted) {
  // A future-versioned header (with a correct CRC, so only the version is
  // at fault) must be rejected with a typed error.
  std::string Payload = "Main.main()\n";
  char Header[128];
  std::snprintf(Header, sizeof(Header),
                "#nimg-profile,99,cu,-,0000000000000000,%08x\n",
                crc32(Payload));
  ProfileReadReport Report;
  CodeProfile P = CodeProfile::fromCsv(std::string(Header) + Payload, &Report);
  EXPECT_EQ(Report.Fatal, ProfileError::UnsupportedVersion);
  EXPECT_TRUE(P.Sigs.empty());

  // A malformed header row is BadHeader, not silently legacy.
  ProfileReadReport BadReport;
  CodeProfile Bad = CodeProfile::fromCsv("#nimg-profile,garbage\nA.b()\n",
                                         &BadReport);
  EXPECT_EQ(BadReport.Fatal, ProfileError::BadHeader);
  EXPECT_TRUE(Bad.Sigs.empty());

  // A legacy headerless file is accepted with an informational issue.
  ProfileReadReport LegacyReport;
  CodeProfile Legacy = CodeProfile::fromCsv("Main.main()\nShape.area()\n",
                                            &LegacyReport);
  EXPECT_TRUE(LegacyReport.usable());
  EXPECT_EQ(Legacy.Header.Version, 0u);
  ASSERT_EQ(Legacy.Sigs.size(), 2u);
  ASSERT_FALSE(LegacyReport.Issues.empty());
  EXPECT_EQ(LegacyReport.Issues[0].Kind, ProfileError::LegacyFormat);

  // And it still drives an optimizing build (no provenance to check).
  Corpus &C = corpus();
  BuildConfig Cfg;
  Cfg.CodeOrder = CodeStrategy::CuOrder;
  Cfg.CodeProf = &Legacy;
  NativeImage Img = buildNativeImage(C.P, Cfg);
  ASSERT_FALSE(Img.Built.Failed);
  EXPECT_TRUE(Img.ProfileDiag.CodeProfileApplied);
}

TEST(FaultInjection, MalformedHeapCellsAreSkippedNotUb) {
  // Non-numeric and overflowing id cells must be skipped with a typed
  // issue — the old strtoull path silently produced garbage ids.
  HeapProfile Template;
  Template.Header.Mode = TraceMode::HeapOrder;
  Template.Ids = {0x10, 0x20};
  std::string Payload = "10\nnot-a-number\nffffffffffffffff1\n20\n-5\n";
  char Header[128];
  std::snprintf(Header, sizeof(Header),
                "#nimg-profile,1,heap,path,0000000000000000,%08x\n",
                crc32(Payload));
  ProfileReadReport Report;
  HeapProfile P = HeapProfile::fromCsv(std::string(Header) + Payload, &Report);
  EXPECT_TRUE(Report.usable());
  EXPECT_EQ(P.Ids, (std::vector<uint64_t>{0x10, 0x20}));
  EXPECT_EQ(Report.RowsKept, 2u);
  EXPECT_EQ(Report.RowsSkipped, 3u);
  ASSERT_FALSE(Report.Issues.empty());
  EXPECT_EQ(Report.Issues[0].Kind, ProfileError::MalformedCell);
}

TEST(FaultInjection, EmptyCaptureRunsAreRetriedOnce) {
  // With no fuel, every instrumented run yields an empty capture; the
  // collector retries each once in the memory-mapped dump mode and still
  // completes with (empty) profiles instead of failing.
  Corpus &C = corpus();
  BuildConfig Cfg;
  Cfg.Seed = 1001;
  RunConfig RC;
  RC.MaxInstructions = 0;
  CollectedProfiles Prof = collectProfiles(C.P, Cfg, RC);
  // The cu-mode run records the main CU entry before the first fuel
  // check, so at least the method- and heap-mode runs are retried.
  EXPECT_GE(Prof.RetriedRuns, 2);
  EXPECT_LE(Prof.RetriedRuns, 3);
  EXPECT_TRUE(Prof.Method.Sigs.empty());
  EXPECT_TRUE(Prof.HeapPath.Ids.empty());
}

// The startup report is the post-mortem artifact for exactly these degraded
// pipelines, so it must remain valid, parseable JSON whatever the faults did.
TEST(FaultInjection, StartupReportStaysValidJsonWhenPipelineDegrades) {
  Corpus &C = corpus();
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    SCOPED_TRACE(::testing::Message() << "seed=" << Seed);

    // Corrupt a pristine heap-mode capture, salvage it, and corrupt the cu
    // profile CSV too, so both the code and heap sides can degrade.
    TraceCapture Cap = C.Caps[size_t(TraceMode::HeapOrder)];
    FaultInjector Inj(Seed);
    Inj.applyTraceFault(Cap, Seed % 2 ? TraceFault::BitFlip
                                      : TraceFault::TruncateMidRecord);
    SalvageStats Stats;
    std::vector<int32_t> Order =
        analyzeHeapAccessOrder(C.P, Cap, C.Paths, &Stats);
    HeapProfile HeapProf =
        heapProfileFor(Order, C.InstrImg.Ids, HeapStrategy::HeapPath);
    HeapProf.Header.Fingerprint = C.Fp;

    std::string CsvText = C.Prof.Cu.toCsv();
    Inj.bitFlipText(CsvText, 1 + Inj.nextBelow(4));
    ProfileReadReport CsvReport;
    CodeProfile CodeProf = CodeProfile::fromCsv(CsvText, &CsvReport);

    BuildConfig Cfg;
    Cfg.Seed = 40 + Seed;
    Cfg.CodeOrder = CodeStrategy::CuOrder;
    Cfg.CodeProf = &CodeProf;
    Cfg.UseHeapOrder = true;
    Cfg.HeapOrder = HeapStrategy::HeapPath;
    Cfg.HeapProf = &HeapProf;
    NativeImage Img = buildNativeImage(C.P, Cfg);
    ASSERT_FALSE(Img.Built.Failed) << Img.Built.FailureMessage;
    RunStats S = runImage(Img, RunConfig());
    EXPECT_FALSE(S.Trapped) << S.TrapMessage;

    obs::StartupReport Report;
    Report.Target = "fault-injected";
    Report.Command = "run";
    Report.setImage(Img);
    Report.setRun(S);
    Report.addSalvage("heap", Stats);
    Report.includeMetrics(true);

    // Whatever degraded, both export formats stay well-formed.
    std::string Json = Report.toJson();
    obs::JsonValue V;
    std::string Error;
    ASSERT_TRUE(obs::parseJson(Json, V, &Error)) << Error;
    const obs::JsonValue *Schema = V.at("schema");
    ASSERT_NE(Schema, nullptr);
    EXPECT_EQ(Schema->Str, "nimg-startup-report");
    const obs::JsonValue *TotalFaults = V.at("run.total_faults");
    ASSERT_NE(TotalFaults, nullptr);
    EXPECT_EQ(uint64_t(TotalFaults->Num), S.totalFaults());
    const obs::JsonValue *Diag = V.get("profile_diag");
    ASSERT_NE(Diag, nullptr);
    if (!CsvReport.usable()) {
      EXPECT_TRUE(Img.ProfileDiag.degraded());
      const obs::JsonValue *Degraded = Diag->get("degraded");
      ASSERT_NE(Degraded, nullptr);
      EXPECT_TRUE(Degraded->B);
      const obs::JsonValue *Issues = Diag->get("issues");
      ASSERT_NE(Issues, nullptr);
      ASSERT_FALSE(Issues->Arr.empty());
      const obs::JsonValue *Kind = Issues->Arr[0].get("kind");
      ASSERT_NE(Kind, nullptr);
      EXPECT_FALSE(Kind->Str.empty());
    }
    const obs::JsonValue *Sal = V.get("salvage");
    ASSERT_NE(Sal, nullptr);
    ASSERT_EQ(Sal->Arr.size(), 1u);
    const obs::JsonValue *Phase = Sal->Arr[0].get("phase");
    ASSERT_NE(Phase, nullptr);
    EXPECT_EQ(Phase->Str, "heap");
    const obs::JsonValue *Scanned = Sal->Arr[0].at("stats.words_scanned");
    ASSERT_NE(Scanned, nullptr);
    EXPECT_EQ(uint64_t(Scanned->Num), Stats.WordsScanned);

    std::string Csv = Report.toCsv();
    EXPECT_NE(Csv.find("run,total_faults,"), std::string::npos);
    EXPECT_NE(Csv.find("image,build_failed,false"), std::string::npos);
  }
}

// Hot/cold splitting consumes the same method-order captures as method
// ordering; block profiles derived from faulted traces must either drive a
// completed split build or degrade every CU to unsplit with a typed
// insufficient_block_profile issue — never crash, never fail the build.
TEST(FaultInjection, SplitBuildsSurviveTraceFaults) {
  Corpus &C = corpus();
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    for (TraceFault Kind : {TraceFault::TruncateMidRecord, TraceFault::BitFlip,
                            TraceFault::DropThread}) {
      SCOPED_TRACE(::testing::Message()
                   << "seed=" << Seed << " fault=" << int(Kind));
      TraceCapture Cap = C.Caps[size_t(TraceMode::MethodOrder)];
      FaultInjector Inj(Seed);
      Inj.applyTraceFault(Cap, Kind);

      SalvageStats Stats;
      BlockProfile Blocks = analyzeBlockCounts(C.P, Cap, C.Paths, &Stats);
      Blocks.Header.Fingerprint = C.Fp;

      BuildConfig Cfg;
      Cfg.Seed = 9 + Seed;
      Cfg.Split = SplitMode::HotCold;
      Cfg.BlockProf = &Blocks;
      NativeImage Img = buildNativeImage(C.P, Cfg);
      ASSERT_FALSE(Img.Built.Failed) << Img.Built.FailureMessage;
      EXPECT_TRUE(Img.Split.active());

      if (Blocks.CoveragePermille < SplitOptions().MinCoveragePermille) {
        // Under-covered counts degrade wholesale: no CU splits and the
        // reason is recorded on the image's diagnostics.
        EXPECT_EQ(Img.Split.SplitCus, 0u);
        EXPECT_EQ(Img.Split.DegradedCus, uint32_t(Img.Code.CUs.size()));
        EXPECT_FALSE(Img.ProfileDiag.BlockProfileApplied);
        bool SawSlug = false;
        for (const ProfileIssue &I : Img.ProfileDiag.Issues)
          SawSlug |= I.Kind == ProfileError::InsufficientBlockProfile;
        EXPECT_TRUE(SawSlug);
      }
      // Split or degraded, the fragment accounting never loses bytes.
      for (size_t Cu = 0; Cu < Img.Split.PerCu.size(); ++Cu) {
        const CuSplit &S = Img.Split.PerCu[Cu];
        EXPECT_EQ(uint64_t(S.HotSize) + S.ColdSize,
                  uint64_t(Img.Code.CUs[Cu].CodeSize) + S.StubBytes);
      }

      if (Seed % 4 == 0) {
        RunStats S = runImage(Img, RunConfig());
        EXPECT_FALSE(S.Trapped) << S.TrapMessage;
        EXPECT_EQ(S.Output, C.BaselineOutput);
        EXPECT_LE(S.TextColdFaults, S.TextFaults);
      }
    }
  }
}

// --blocks exttsp layers edge counts from the same faulted captures on
// top of the split. Whatever the fault did to the trace, the build must
// complete, fragment accounting must balance, the run must reproduce the
// baseline output, and a rejected edge profile must degrade to block
// index order with typed diagnostics — never crash.
TEST(FaultInjection, ExtTspBuildsSurviveTraceFaults) {
  Corpus &C = corpus();
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    for (TraceFault Kind : {TraceFault::TruncateMidRecord, TraceFault::BitFlip,
                            TraceFault::DropThread}) {
      SCOPED_TRACE(::testing::Message()
                   << "seed=" << Seed << " fault=" << int(Kind));
      TraceCapture Cap = C.Caps[size_t(TraceMode::MethodOrder)];
      FaultInjector Inj(Seed);
      Inj.applyTraceFault(Cap, Kind);

      BlockProfile Blocks = analyzeBlockCounts(C.P, Cap, C.Paths, nullptr);
      Blocks.Header.Fingerprint = C.Fp;
      EdgeProfile Edges = analyzeEdgeCounts(C.P, Cap, C.Paths, nullptr);
      Edges.Header.Fingerprint = C.Fp;

      BuildConfig Cfg;
      Cfg.Seed = 9 + Seed;
      Cfg.Split = SplitMode::HotCold;
      Cfg.SplitOpts.Blocks = BlockOrderMode::ExtTsp;
      Cfg.BlockProf = &Blocks;
      Cfg.EdgeProf = &Edges;
      NativeImage Img = buildNativeImage(C.P, Cfg);
      ASSERT_FALSE(Img.Built.Failed) << Img.Built.FailureMessage;
      EXPECT_TRUE(Img.Split.ExtTsp.Requested);
      EXPECT_TRUE(Img.ProfileDiag.EdgeProfileProvided);

      if (Edges.CoveragePermille < SplitOptions().MinCoveragePermille ||
          Blocks.CoveragePermille < SplitOptions().MinCoveragePermille) {
        // An under-covered profile (either one) keeps every fragment in
        // block index order; the reorderer reports full degradation.
        EXPECT_EQ(Img.Split.ExtTsp.ReorderedCus, 0u);
        EXPECT_FALSE(Img.Split.ExtTsp.Applied);
        EXPECT_FALSE(Img.ProfileDiag.EdgeProfileApplied);
      }
      // Reordered or degraded, no CU's fragment accounting loses bytes.
      for (size_t Cu = 0; Cu < Img.Split.PerCu.size(); ++Cu) {
        const CuSplit &S = Img.Split.PerCu[Cu];
        EXPECT_EQ(uint64_t(S.HotSize) + S.ColdSize,
                  uint64_t(Img.Code.CUs[Cu].CodeSize) + S.StubBytes);
      }

      RunStats S = runImage(Img, RunConfig());
      EXPECT_FALSE(S.Trapped) << S.TrapMessage;
      EXPECT_EQ(S.Output, C.BaselineOutput);
    }
  }
}

TEST(FaultInjection, CollectedProfilesFromCleanRunsSalvageClean) {
  Corpus &C = corpus();
  EXPECT_TRUE(C.Prof.CuSalvage.clean());
  EXPECT_TRUE(C.Prof.MethodSalvage.clean());
  EXPECT_TRUE(C.Prof.HeapSalvage.clean());
  EXPECT_EQ(C.Prof.RetriedRuns, 0);
}

// A compile worker throwing mid-build must not deadlock or fail the build:
// the victim unit degrades to root-only with a recorded WorkerFault issue,
// the run still produces the baseline output, and degradation stays
// deterministic across worker counts.
TEST(FaultInjection, WorkerFaultDegradesBuildDeterministically) {
  Corpus &C = corpus();
  MethodId Victim = C.P.MainMethod;
  setCompileFaultHookForTest(
      [Victim](MethodId Root) { return Root == Victim; });

  auto BuildFaulted = [&](int Jobs) {
    setJobs(Jobs);
    BuildConfig Cfg;
    Cfg.Seed = 2;
    return buildNativeImage(C.P, Cfg);
  };

  NativeImage Img = BuildFaulted(4);
  ASSERT_FALSE(Img.Built.Failed) << Img.Built.FailureMessage;
  ASSERT_EQ(Img.Code.CompileFaults.size(), 1u);
  EXPECT_EQ(Img.Code.CompileFaults[0].first, Victim);
  // The degraded unit holds only its root: every inlining decision of the
  // faulted task was discarded.
  EXPECT_EQ(Img.Code.cuOf(Victim).Copies.size(), 1u);

  bool SawWorkerFault = false;
  for (const ProfileIssue &I : Img.ProfileDiag.Issues)
    SawWorkerFault |= I.Kind == ProfileError::WorkerFault;
  EXPECT_TRUE(SawWorkerFault);

  // The image still runs the workload to completion with correct output.
  RunStats S = runImage(Img, RunConfig());
  EXPECT_FALSE(S.Trapped) << S.TrapMessage;
  EXPECT_EQ(S.Output, C.BaselineOutput);

  // Degradation itself is deterministic: 1 worker and 8 workers produce
  // byte-identical images under the same injected fault.
  NativeImage One = BuildFaulted(1);
  NativeImage Eight = BuildFaulted(8);
  ASSERT_FALSE(One.Built.Failed);
  ASSERT_FALSE(Eight.Built.Failed);
  EXPECT_EQ(serializeImage(C.P, One), serializeImage(C.P, Eight));

  setCompileFaultHookForTest(nullptr);
  setJobs(0);

  // With the hook cleared the same config builds clean again.
  BuildConfig CleanCfg;
  CleanCfg.Seed = 2;
  NativeImage Clean = buildNativeImage(C.P, CleanCfg);
  EXPECT_TRUE(Clean.Code.CompileFaults.empty());
}

//===----------------------------------------------------------------------===//
// Fleet-merge fault matrix: every MemberFault kind injected at every
// member position of an 8-member profile set. The aggregate must always
// drive a *completed* build; semantic faults must be quarantined with
// their exact typed reason (mechanical faults' reasons depend on where
// the damage lands, but the member never survives unnoticed).
//===----------------------------------------------------------------------===//

namespace {

/// The corpus cu profile re-stamped to generation \p Gen and renamed — a
/// clean fleet member as one instance would have uploaded it.
std::string stampedCuCsv(Corpus &C, uint64_t Gen) {
  CodeProfile P = C.Prof.Cu;
  P.Header.Generation = Gen;
  return P.toCsv();
}

/// Builds the 8-member set (generations 100..107), faults the member at
/// \p FaultPos with \p Kind under \p Seed, and returns the loaded set.
std::vector<MemberProfile> faultedMemberSet(Corpus &C, uint64_t Seed,
                                            MemberFault Kind,
                                            size_t FaultPos) {
  const uint64_t BaseGen = 100, NewestGen = 107;
  std::vector<MemberProfile> Members;
  FaultInjector Inj(Seed);
  for (size_t I = 0; I < 8; ++I) {
    std::string Text = stampedCuCsv(C, BaseGen + I);
    if (I == FaultPos)
      EXPECT_TRUE(Inj.applyMemberFault(Text, Kind, NewestGen));
    Members.push_back(
        loadMemberProfile("inst" + std::to_string(I), Text));
  }
  return Members;
}

} // namespace

TEST(FaultInjection, MergeMemberFaultMatrixAlwaysBuilds) {
  Corpus &C = corpus();
  for (MemberFault Kind : AllMemberFaults) {
    for (size_t Pos = 0; Pos < 8; ++Pos) {
      uint64_t Seed = 17 + uint64_t(Kind) * 8 + Pos;
      SCOPED_TRACE(::testing::Message()
                   << "kind=" << int(Kind) << " pos=" << Pos
                   << " seed=" << Seed);
      std::vector<MemberProfile> Members =
          faultedMemberSet(C, Seed, Kind, Pos);

      BuildConfig Cfg;
      Cfg.Seed = 3;
      Cfg.CodeOrder = CodeStrategy::CuOrder;
      Cfg.CodeMembers = &Members;
      NativeImage Img = buildNativeImage(C.P, Cfg);
      ASSERT_FALSE(Img.Built.Failed) << Img.Built.FailureMessage;

      const MergeManifest &M = Img.ProfileDiag.Merge;
      ASSERT_EQ(M.Members.size(), 8u);
      EXPECT_NE(M.Outcome, MergeOutcome::NotAttempted);
      const MergeMemberReport &R = M.Members[Pos];

      // Semantic kinds carry a fresh CRC, so only their dedicated gate
      // can (and must) name them.
      switch (Kind) {
      case MemberFault::VersionSkew:
        EXPECT_EQ(R.Status, MergeMemberStatus::Quarantined);
        EXPECT_EQ(R.Reason, ProfileError::FingerprintMismatch);
        break;
      case MemberFault::StaleGeneration:
        EXPECT_EQ(R.Status, MergeMemberStatus::Quarantined);
        EXPECT_EQ(R.Reason, ProfileError::StaleGeneration);
        break;
      case MemberFault::DriftSkew:
        EXPECT_EQ(R.Status, MergeMemberStatus::Quarantined);
        EXPECT_EQ(R.Reason, ProfileError::DriftOutlier);
        break;
      case MemberFault::CoverageCollapse:
        EXPECT_EQ(R.Status, MergeMemberStatus::Quarantined);
        EXPECT_EQ(R.Reason, ProfileError::CoverageBelowGate);
        break;
      case MemberFault::AbsurdPeriod:
        EXPECT_EQ(R.Status, MergeMemberStatus::Quarantined);
        EXPECT_EQ(R.Reason, ProfileError::ImplausibleSamplePeriod);
        break;
      case MemberFault::TruncateCsv:
      case MemberFault::BitFlipCsv:
        // Where the mechanical damage lands picks the reason (BadHeader,
        // ChecksumMismatch, ...); it must never pass as fully accepted
        // *unless* the flip landed in a cell the gates legitimately
        // re-derive (then the set still merges).
        break;
      }

      // The other 7 members survive every single-member fault. (A bit
      // flip *can* legitimately implicate others — e.g. inflating the
      // victim's generation stamp makes the rest look stale — so the
      // cross-member claim is only made for the targeted kinds.)
      size_t LiveOthers = 0;
      for (size_t I = 0; I < 8; ++I)
        if (I != Pos && M.Members[I].Status != MergeMemberStatus::Quarantined)
          ++LiveOthers;
      if (Kind != MemberFault::BitFlipCsv) {
        EXPECT_EQ(LiveOthers, 7u);
        EXPECT_EQ(M.Outcome, MergeOutcome::Merged);
        EXPECT_TRUE(Img.ProfileDiag.CodeProfileApplied);
      }

      // Seed-determinism: replaying the same scenario (and the build's
      // ExpectedFingerprint) reproduces the classification bit-for-bit.
      std::vector<MemberProfile> Replay =
          faultedMemberSet(C, Seed, Kind, Pos);
      MergeOptions MOpts;
      MOpts.ExpectedFingerprint = C.Fp;
      MergeResult MR = aggregateProfiles(Replay, MOpts);
      EXPECT_EQ(MR.Manifest.Members[Pos].Status, R.Status);
      EXPECT_EQ(MR.Manifest.Members[Pos].Reason, R.Reason);
    }
  }
}

// The acceptance bar from the issue: 8 members, 7 of them damaged, must
// still produce a successful build with every quarantine visible as a
// typed reason in the startup report.
TEST(FaultInjection, SevenOfEightCorruptMembersStillBuild) {
  Corpus &C = corpus();
  // Deterministically-quarantined kinds only: each faulted member must be
  // *caught*, leaving exactly the one clean member.
  const MemberFault Kinds[] = {
      MemberFault::TruncateCsv, MemberFault::VersionSkew,
      MemberFault::StaleGeneration, MemberFault::CoverageCollapse};
  FaultInjector Inj(99);
  std::vector<MemberProfile> Members;
  for (size_t I = 0; I < 8; ++I) {
    std::string Text = stampedCuCsv(C, 100 + I);
    if (I != 3) // Member 3 stays clean.
      ASSERT_TRUE(Inj.applyMemberFault(Text, Kinds[I % 4], 107));
    Members.push_back(loadMemberProfile("inst" + std::to_string(I), Text));
  }

  BuildConfig Cfg;
  Cfg.Seed = 3;
  Cfg.CodeOrder = CodeStrategy::CuOrder;
  Cfg.CodeMembers = &Members;
  NativeImage Img = buildNativeImage(C.P, Cfg);
  ASSERT_FALSE(Img.Built.Failed) << Img.Built.FailureMessage;
  EXPECT_EQ(Img.ProfileDiag.Merge.Outcome, MergeOutcome::BestSingle);
  EXPECT_TRUE(Img.ProfileDiag.CodeProfileApplied);
  EXPECT_EQ(Img.ProfileDiag.Merge.countWithStatus(
                MergeMemberStatus::Quarantined),
            7u);

  // The image still runs the workload with baseline output.
  RunStats S = runImage(Img, RunConfig());
  EXPECT_FALSE(S.Trapped) << S.TrapMessage;
  EXPECT_EQ(S.Output, C.BaselineOutput);

  // Every quarantined member shows up in the report with a typed reason.
  obs::StartupReport Report;
  Report.Target = "fleet";
  Report.Command = "build";
  Report.setImage(Img);
  obs::JsonValue V;
  std::string Error;
  ASSERT_TRUE(obs::parseJson(Report.toJson(), V, &Error)) << Error;
  const obs::JsonValue *Merge = V.get("merge");
  ASSERT_NE(Merge, nullptr);
  EXPECT_EQ(Merge->get("outcome")->Str, "best_single");
  EXPECT_EQ(uint64_t(Merge->get("quarantined")->Num), 7u);
  const obs::JsonValue *Manifest = Merge->get("manifest");
  ASSERT_NE(Manifest, nullptr);
  ASSERT_EQ(Manifest->Arr.size(), 8u);
  size_t TypedReasons = 0;
  for (const obs::JsonValue &Row : Manifest->Arr) {
    const obs::JsonValue *Status = Row.get("status");
    ASSERT_NE(Status, nullptr);
    if (Status->Str == "quarantined") {
      const obs::JsonValue *Reason = Row.get("reason");
      ASSERT_NE(Reason, nullptr);
      EXPECT_FALSE(Reason->Str.empty());
      ++TypedReasons;
    }
  }
  EXPECT_EQ(TypedReasons, 7u);
}

TEST(FaultInjection, AllCorruptMembersFallBackAndStillBuild) {
  Corpus &C = corpus();
  // Only kinds quarantined by per-input evidence: StaleGeneration is
  // *relative* — a fleet where everyone is equally ancient is legitimate
  // and would survive, which is not the ladder bottom this test wants.
  const MemberFault Kinds[] = {
      MemberFault::TruncateCsv, MemberFault::VersionSkew,
      MemberFault::CoverageCollapse, MemberFault::AbsurdPeriod};
  FaultInjector Inj(7);
  std::vector<MemberProfile> Members;
  for (size_t I = 0; I < 8; ++I) {
    std::string Text = stampedCuCsv(C, 100 + I);
    ASSERT_TRUE(Inj.applyMemberFault(Text, Kinds[I % 4], 107));
    Members.push_back(loadMemberProfile("inst" + std::to_string(I), Text));
  }
  BuildConfig Cfg;
  Cfg.Seed = 3;
  Cfg.CodeOrder = CodeStrategy::CuOrder;
  Cfg.CodeMembers = &Members;
  NativeImage Img = buildNativeImage(C.P, Cfg);
  ASSERT_FALSE(Img.Built.Failed) << Img.Built.FailureMessage;
  EXPECT_FALSE(Img.ProfileDiag.CodeProfileApplied);
  EXPECT_TRUE(Img.ProfileDiag.degraded());

  // Fallback still runs correctly on the default layout.
  RunStats S = runImage(Img, RunConfig());
  EXPECT_FALSE(S.Trapped) << S.TrapMessage;
  EXPECT_EQ(S.Output, C.BaselineOutput);
}

// The mid-write-kill scenario the atomic writer exists for: a profile
// artifact overwrite that dies partway must leave the previous artifact
// ingestible — the fleet never quarantines a member because the *writer*
// crashed.
TEST(FaultInjection, MidWriteKillLeavesPreviousProfileIngestible) {
  Corpus &C = corpus();
  namespace fs = std::filesystem;
  fs::path Path = fs::temp_directory_path() / "nimg_fault_cu.csv";
  fs::remove(Path);

  std::string Old = stampedCuCsv(C, 100);
  ASSERT_TRUE(atomicWriteFile(Path.string(), Old));

  // The rewrite is killed after a handful of bytes.
  std::string New = stampedCuCsv(C, 101);
  setAtomicWriteTruncationForTest(16);
  EXPECT_FALSE(atomicWriteFile(Path.string(), New));
  EXPECT_FALSE(fs::exists(Path.string() + ".tmp"));

  // The survivor is the *old complete* profile, and it ingests cleanly.
  std::vector<MemberProfile> Members =
      loadMemberProfiles({Path.string()});
  ASSERT_EQ(Members.size(), 1u);
  EXPECT_EQ(Members[0].Profile.LoadError, ProfileError::None);
  EXPECT_EQ(Members[0].Profile.Header.Generation, 100u);

  MergeResult R = aggregateProfiles(Members);
  EXPECT_EQ(R.Manifest.Outcome, MergeOutcome::BestSingle);
  EXPECT_EQ(R.Manifest.Members[0].Status, MergeMemberStatus::Accepted);
  fs::remove(Path);
}

// A sampled upload cut off mid-payload (the uploader died between row
// writes) is not thrown away: the CRC mismatch downgrades to a row-prefix
// salvage, and the surviving prefix still rides along in a sampled fleet
// merge that drives a completed build.
TEST(FaultInjection, TruncatedSampledUploadSalvagesToUsablePrefix) {
  Corpus &C = corpus();
  CodeProfile Samp =
      analyzeSampledCuOrder(C.P, C.Caps[size_t(TraceMode::Sampled)]);
  ASSERT_EQ(Samp.LoadError, ProfileError::None);
  ASSERT_GT(Samp.Sigs.size(), 1u);
  Samp.Header.Fingerprint = C.Fp;
  auto StampedCsv = [&](uint64_t Gen) {
    CodeProfile P = Samp;
    P.Header.Generation = Gen;
    return P.toCsv();
  };

  // Cut away the final payload row: the header CRC no longer matches, but
  // every surviving row is intact.
  std::string Cut = StampedCsv(107);
  size_t LastRow = Cut.rfind('\n', Cut.size() - 2);
  ASSERT_NE(LastRow, std::string::npos);
  Cut.resize(LastRow + 1);

  MemberProfile Victim = loadMemberProfile("inst7", Cut);
  EXPECT_EQ(Victim.Profile.LoadError, ProfileError::None);
  EXPECT_TRUE(Victim.Read.usable());
  EXPECT_TRUE(Victim.Read.PrefixSalvaged);
  EXPECT_EQ(Victim.Profile.Sigs.size(), Samp.Sigs.size() - 1);

  std::vector<MemberProfile> Members;
  for (size_t I = 0; I < 7; ++I)
    Members.push_back(
        loadMemberProfile("inst" + std::to_string(I), StampedCsv(100 + I)));
  Members.push_back(Victim);

  BuildConfig Cfg;
  Cfg.Seed = 3;
  Cfg.CodeOrder = CodeStrategy::CuOrder;
  Cfg.CodeMembers = &Members;
  NativeImage Img = buildNativeImage(C.P, Cfg);
  ASSERT_FALSE(Img.Built.Failed) << Img.Built.FailureMessage;

  const MergeManifest &M = Img.ProfileDiag.Merge;
  ASSERT_EQ(M.Members.size(), 8u);
  EXPECT_EQ(M.Outcome, MergeOutcome::Merged);
  EXPECT_EQ(M.Members[7].Status, MergeMemberStatus::Salvaged);
  EXPECT_EQ(M.Members[7].Reason, ProfileError::ChecksumMismatch);
  EXPECT_TRUE(Img.ProfileDiag.CodeProfileApplied);

  // The salvaged-prefix image still runs the workload to baseline output.
  RunStats S = runImage(Img, RunConfig());
  EXPECT_FALSE(S.Trapped) << S.TrapMessage;
  EXPECT_EQ(S.Output, C.BaselineOutput);
}
