//===- OrderersTest.cpp - Code/heap ordering and matching tests -------------===//

#include "src/ir/IrBuilder.h"
#include "src/ordering/Orderers.h"

#include <gtest/gtest.h>

using namespace nimg;

namespace {

/// Builds a program with simple static methods named by \p Names (class T)
/// and a CompiledProgram with one CU each, in alphabetical order.
struct CodeFixture {
  Program P;
  ReachabilityResult Reach;
  CompiledProgram CP;

  explicit CodeFixture(std::vector<std::string> Names) {
    ClassId C = P.addClass("T");
    for (const std::string &N : Names) {
      MethodId M = P.addMethod(C, N, {}, P.intType(), /*IsStatic=*/true);
      IrBuilder B(P, M);
      B.ret(B.constInt(1));
    }
    // Main calls everything so reachability covers it.
    MethodId Main = P.addMethod(C, "mainX", {}, P.intType(), true);
    IrBuilder B(P, Main);
    uint16_t R = B.constInt(0);
    for (const std::string &N : Names) {
      MethodId M = P.findMethodBySig("T." + N + "()");
      uint16_t V = B.callStatic(M, {});
      R = B.binop(Opcode::Add, R, V);
    }
    B.ret(R);
    P.MainMethod = Main;
    Reach = analyzeReachability(P);
    InlinerConfig Cfg;
    Cfg.TrivialSize = 0; // no inlining: one CU per method
    Cfg.SmallSize = 0;
    CP = buildCompilationUnits(P, Reach, Cfg, false);
  }

  std::vector<std::string> orderedRoots(const std::vector<int32_t> &Order) {
    std::vector<std::string> Out;
    for (int32_t Cu : Order)
      Out.push_back(P.method(CP.CUs[size_t(Cu)].Root).Name);
    return Out;
  }
};

} // namespace

TEST(CodeOrdering, ProfiledCusComeFirstInProfileOrder) {
  CodeFixture F({"aa", "bb", "cc", "dd"});
  CodeProfile Profile;
  Profile.Sigs = {"T.cc()", "T.aa()"};
  auto Order = orderCusWithProfile(F.P, F.CP, Profile, CodeStrategy::CuOrder);
  auto Roots = F.orderedRoots(Order);
  ASSERT_GE(Roots.size(), 4u);
  EXPECT_EQ(Roots[0], "cc");
  EXPECT_EQ(Roots[1], "aa");
}

TEST(CodeOrdering, UnprofiledCusKeepAlphabeticalOrder) {
  CodeFixture F({"aa", "bb", "cc", "dd"});
  CodeProfile Profile;
  Profile.Sigs = {"T.dd()"};
  auto Roots = F.orderedRoots(orderCusWithProfile(F.P, F.CP, Profile, CodeStrategy::CuOrder));
  std::vector<std::string> Tail(Roots.begin() + 1, Roots.end());
  // dd first; the rest stays alphabetical (and includes mainX at its
  // alphabetical position among the unprofiled CUs).
  EXPECT_EQ(Roots[0], "dd");
  EXPECT_TRUE(std::is_sorted(Tail.begin(), Tail.end()));
}

TEST(CodeOrdering, EmptyProfileIsIdentity) {
  CodeFixture F({"aa", "bb", "cc"});
  CodeProfile Profile;
  auto Order = orderCusWithProfile(F.P, F.CP, Profile, CodeStrategy::CuOrder);
  for (size_t I = 0; I < Order.size(); ++I)
    EXPECT_EQ(Order[I], int32_t(I));
}

TEST(CodeOrdering, MethodBasedUsesInlinedMembers) {
  // With inlining enabled, a CU whose *inlined* method ran gets hoisted
  // under method ordering even when its root is unprofiled.
  Program P;
  ClassId C = P.addClass("T");
  MethodId Callee = P.addMethod(C, "zcallee", {}, P.intType(), true);
  {
    IrBuilder B(P, Callee);
    B.ret(B.constInt(7));
  }
  MethodId Caller = P.addMethod(C, "acaller", {}, P.intType(), true);
  {
    IrBuilder B(P, Caller);
    B.ret(B.callStatic(Callee, {}));
  }
  P.MainMethod = Caller;
  ReachabilityResult Reach = analyzeReachability(P);
  InlinerConfig Cfg; // defaults inline the tiny callee
  CompiledProgram CP = buildCompilationUnits(P, Reach, Cfg, false);
  ASSERT_GT(CP.cuOf(Caller).Copies.size(), 1u) << "callee was not inlined";

  CodeProfile Profile;
  Profile.Sigs = {"T.zcallee()"}; // only the callee observed
  auto CuOrder = orderCusWithProfile(P, CP, Profile, CodeStrategy::CuOrder);
  auto MethodOrder = orderCusWithProfile(P, CP, Profile, CodeStrategy::MethodOrder);
  // cu ordering: no CU root matches -> alphabetical (acaller first anyway).
  // method ordering: both the callee CU and the caller CU (contains an
  // inlined copy) rank at position 0; stable sort keeps default order.
  EXPECT_EQ(P.method(CP.CUs[size_t(MethodOrder[0])].Root).Name, "acaller");
  (void)CuOrder;
}

// --- Heap matching ----------------------------------------------------------

namespace {

/// A synthetic snapshot of N stored "objects" with controllable ids.
struct HeapFixture {
  Program P;
  Heap H;
  HeapSnapshot Snap;
  IdTable Ids;

  explicit HeapFixture(std::vector<uint64_t> PathIds) : H(P) {
    ClassId C = P.addClass("Obj");
    for (size_t I = 0; I < PathIds.size(); ++I) {
      CellIdx Cell = H.allocObject(C);
      SnapshotEntry E;
      E.Cell = Cell;
      E.SizeBytes = 16;
      E.IsRoot = true;
      Snap.EntryOfCell.emplace(Cell, int32_t(Snap.Entries.size()));
      Snap.Entries.push_back(E);
    }
    Ids.IncrementalIds.assign(PathIds.size(), 0);
    Ids.StructuralHashes.assign(PathIds.size(), 0);
    Ids.HeapPathHashes = std::move(PathIds);
  }
};

} // namespace

TEST(HeapOrdering, MatchedObjectsHoistInProfileOrder) {
  HeapFixture F({100, 200, 300, 400, 500});
  HeapProfile Profile;
  Profile.Ids = {400, 200};
  HeapMatchStats Stats;
  auto Order = orderObjectsWithProfile(F.Snap, F.Ids, HeapStrategy::HeapPath,
                                       Profile, &Stats);
  EXPECT_EQ(Stats.Matched, 2u);
  ASSERT_EQ(Order.size(), 5u);
  EXPECT_EQ(Order[0], 3); // id 400
  EXPECT_EQ(Order[1], 1); // id 200
  EXPECT_EQ(Order[2], 0); // the rest in default order
  EXPECT_EQ(Order[3], 2);
  EXPECT_EQ(Order[4], 4);
}

TEST(HeapOrdering, UnknownIdsAreSkipped) {
  HeapFixture F({1, 2});
  HeapProfile Profile;
  Profile.Ids = {999, 2};
  HeapMatchStats Stats;
  auto Order = orderObjectsWithProfile(F.Snap, F.Ids, HeapStrategy::HeapPath,
                                       Profile, &Stats);
  EXPECT_EQ(Stats.Matched, 1u);
  EXPECT_EQ(Order[0], 1);
}

TEST(HeapOrdering, CollidingIdsConsumeInDefaultOrder) {
  // Three objects share one id; the profile mentions it twice: the first
  // two (in default order) are hoisted.
  HeapFixture F({7, 7, 7});
  HeapProfile Profile;
  Profile.Ids = {7, 7};
  HeapMatchStats Stats;
  auto Order = orderObjectsWithProfile(F.Snap, F.Ids, HeapStrategy::HeapPath,
                                       Profile, &Stats);
  EXPECT_EQ(Stats.Matched, 2u);
  EXPECT_EQ(Order[0], 0);
  EXPECT_EQ(Order[1], 1);
  EXPECT_EQ(Order[2], 2);
}

TEST(HeapOrdering, ElidedEntriesNeverPlaced) {
  HeapFixture F({1, 2, 3});
  F.Snap.Entries[1].Elided = true;
  HeapProfile Profile;
  Profile.Ids = {2}; // points at the elided entry's id
  HeapMatchStats Stats;
  auto Order = orderObjectsWithProfile(F.Snap, F.Ids, HeapStrategy::HeapPath,
                                       Profile, &Stats);
  EXPECT_EQ(Stats.Matched, 0u);
  EXPECT_EQ(Order.size(), 2u);
}
