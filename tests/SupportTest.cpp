//===- SupportTest.cpp - Tests for support utilities -----------------------===//

#include "src/support/ByteBuffer.h"
#include "src/support/Crc32.h"
#include "src/support/Csv.h"
#include "src/support/Murmur3.h"
#include "src/support/SplitMix64.h"

#include <gtest/gtest.h>

#include <set>

using namespace nimg;

// --- MurmurHash3 -----------------------------------------------------------

TEST(Murmur3, EmptyInputIsStable) {
  EXPECT_EQ(murmurHash3(nullptr, 0), murmurHash3(nullptr, 0));
  EXPECT_NE(murmurHash3(nullptr, 0, 1), murmurHash3(nullptr, 0, 2));
}

TEST(Murmur3, KnownVector) {
  // Reference value of MurmurHash3 x64-128 ("hello", seed 0): the canonical
  // C implementation yields low 64 bits 0xcbd8a7b341bd9b02.
  EXPECT_EQ(murmurHash3("hello"), 0xcbd8a7b341bd9b02ULL);
}

TEST(Murmur3, DiffersByContent) {
  EXPECT_NE(murmurHash3("abc"), murmurHash3("abd"));
  EXPECT_NE(murmurHash3("abc"), murmurHash3("ab"));
}

TEST(Murmur3, AllTailLengthsDiffer) {
  // Exercise every switch arm of the tail handling (lengths 0..16).
  std::set<uint64_t> Seen;
  std::string Data = "0123456789abcdefg";
  for (size_t Len = 0; Len <= 16; ++Len)
    Seen.insert(murmurHash3(Data.data(), Len));
  EXPECT_EQ(Seen.size(), 17u);
}

TEST(Murmur3, MultiBlockInput) {
  std::string Long(1000, 'x');
  std::string Long2 = Long;
  Long2[999] = 'y';
  EXPECT_NE(murmurHash3(Long), murmurHash3(Long2));
}

TEST(Murmur3, DigestHiLoIndependent) {
  Murmur3Digest D = murmurHash3x64_128("data", 4, 7);
  EXPECT_NE(D.Lo, D.Hi);
}

// --- ByteBuffer ---------------------------------------------------------------

TEST(ByteBuffer, AppendsLittleEndian) {
  ByteBuffer B;
  B.appendU32(0x11223344);
  ASSERT_EQ(B.size(), 4u);
  EXPECT_EQ(B.bytes()[0], 0x44);
  EXPECT_EQ(B.bytes()[3], 0x11);
  B.appendU64(0x0102030405060708ULL);
  EXPECT_EQ(B.bytes()[4], 0x08);
  EXPECT_EQ(B.bytes()[11], 0x01);
}

TEST(ByteBuffer, SizedStringRoundTrips) {
  ByteBuffer B;
  B.appendSizedString("hi");
  ASSERT_EQ(B.size(), 6u);
  EXPECT_EQ(B.bytes()[0], 2u);
  EXPECT_EQ(B.bytes()[4], 'h');
}

TEST(ByteBuffer, AppendBufferConcatenates) {
  ByteBuffer A, B;
  A.appendU8(1);
  B.appendU8(2);
  A.appendBuffer(B);
  ASSERT_EQ(A.size(), 2u);
  EXPECT_EQ(A.bytes()[1], 2u);
}

TEST(ByteBuffer, DoubleEncodingIsBitExact) {
  ByteBuffer A, B;
  A.appendF64(1.5);
  B.appendF64(1.5);
  EXPECT_EQ(A.bytes(), B.bytes());
  ByteBuffer C;
  C.appendF64(-1.5);
  EXPECT_NE(A.bytes(), C.bytes());
}

// --- CSV -----------------------------------------------------------------------

TEST(Csv, RoundTripsSimpleRows) {
  CsvDocument Doc;
  Doc.Rows = {{"a", "b"}, {"1", "2"}};
  CsvDocument Parsed = parseCsv(writeCsv(Doc));
  EXPECT_EQ(Parsed.Rows, Doc.Rows);
}

TEST(Csv, QuotesSpecialCharacters) {
  CsvDocument Doc;
  Doc.Rows = {{"has,comma", "has\"quote", "has\nnewline"}};
  std::string Text = writeCsv(Doc);
  CsvDocument Parsed = parseCsv(Text);
  EXPECT_EQ(Parsed.Rows, Doc.Rows);
}

TEST(Csv, ParsesWithoutTrailingNewline) {
  CsvDocument Parsed = parseCsv("a,b\nc,d");
  ASSERT_EQ(Parsed.Rows.size(), 2u);
  EXPECT_EQ(Parsed.Rows[1][1], "d");
}

TEST(Csv, EmptyCellsSurvive) {
  CsvDocument Parsed = parseCsv("a,,c\n");
  ASSERT_EQ(Parsed.Rows.size(), 1u);
  ASSERT_EQ(Parsed.Rows[0].size(), 3u);
  EXPECT_EQ(Parsed.Rows[0][1], "");
}

TEST(Csv, EmptyInputHasNoRows) {
  EXPECT_TRUE(parseCsv("").Rows.empty());
}

namespace {

/// A random CSV document over an alphabet that includes every character
/// the writer must quote: commas, quotes, newlines, carriage returns.
CsvDocument randomDoc(SplitMix64 &Rng) {
  static const char Alphabet[] = {'a', 'b', 'Z', '0', ' ', ',',
                                  '"', '\n', '\r', ';', '\t'};
  CsvDocument Doc;
  size_t Rows = 1 + Rng.nextBelow(8);
  for (size_t R = 0; R < Rows; ++R) {
    std::vector<std::string> Row;
    size_t Cells = 1 + Rng.nextBelow(5);
    for (size_t C = 0; C < Cells; ++C) {
      std::string Cell;
      size_t Len = Rng.nextBelow(12);
      for (size_t I = 0; I < Len; ++I)
        Cell.push_back(Alphabet[Rng.nextBelow(sizeof(Alphabet))]);
      Row.push_back(Cell);
    }
    Doc.Rows.push_back(std::move(Row));
  }
  return Doc;
}

} // namespace

TEST(Csv, RandomDocumentsRoundTrip) {
  // Property: parse(write(Doc)) == Doc for any document whose rows have at
  // least one cell, including cells with embedded quotes and newlines.
  SplitMix64 Rng(20250805);
  for (int Case = 0; Case < 200; ++Case) {
    CsvDocument Doc = randomDoc(Rng);
    CsvDocument Parsed = parseCsv(writeCsv(Doc));
    ASSERT_EQ(Parsed.Rows, Doc.Rows) << "case " << Case;
  }
}

TEST(Csv, TruncatedInputNeverCrashesAndKeepsWholeRows) {
  // A profile file cut at an arbitrary byte offset (crash mid-write) must
  // parse without reading past the end; rows before the cut survive.
  SplitMix64 Rng(77);
  for (int Case = 0; Case < 50; ++Case) {
    CsvDocument Doc = randomDoc(Rng);
    std::string Text = writeCsv(Doc);
    for (size_t Cut = 0; Cut <= Text.size(); ++Cut) {
      CsvDocument Parsed = parseCsv(Text.substr(0, Cut));
      EXPECT_LE(Parsed.Rows.size(), Doc.Rows.size() + 1);
    }
  }
}

// --- CRC-32 --------------------------------------------------------------------

TEST(Crc32, KnownVectors) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(crc32(""), 0u);
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::string Data = "the quick brown fox jumps over the lazy dog";
  uint32_t Ref = crc32(Data);
  SplitMix64 Rng(5);
  for (int I = 0; I < 64; ++I) {
    std::string Mutated = Data;
    size_t Byte = Rng.nextBelow(Mutated.size());
    Mutated[Byte] = char(uint8_t(Mutated[Byte]) ^ (1u << Rng.nextBelow(8)));
    EXPECT_NE(crc32(Mutated), Ref);
  }
}

// --- SplitMix64 ------------------------------------------------------------------

TEST(SplitMix64, DeterministicPerSeed) {
  SplitMix64 A(42), B(42), C(43);
  EXPECT_EQ(A.next(), B.next());
  SplitMix64 A2(42);
  EXPECT_NE(A2.next(), C.next());
}

TEST(SplitMix64, NextBelowInRange) {
  SplitMix64 R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(10), 10u);
}

TEST(SplitMix64, NextDoubleInUnitInterval) {
  SplitMix64 R(9);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(SplitMix64, ShufflePermutes) {
  std::vector<int> V{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Orig = V;
  SplitMix64 R(123);
  R.shuffle(V);
  std::multiset<int> A(V.begin(), V.end()), B(Orig.begin(), Orig.end());
  EXPECT_EQ(A, B);
  EXPECT_NE(V, Orig); // Overwhelmingly likely for this seed.
}

TEST(SplitMix64, Mix64IsOrderSensitive) {
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_EQ(mix64(5, 9), mix64(5, 9));
}
