//===- FrontendTest.cpp - MiniJava lexer/parser/compile tests ---------------===//

#include "src/lang/Compile.h"
#include "src/lang/Lexer.h"
#include "src/lang/Parser.h"

#include <gtest/gtest.h>

using namespace nimg;

namespace {

std::vector<std::string> compileOk(const std::vector<std::string> &Sources,
                                   Program &P) {
  std::vector<std::string> Errors;
  bool Ok = compileSources(Sources, P, Errors);
  EXPECT_TRUE(Ok);
  for (const std::string &E : Errors)
    ADD_FAILURE() << E;
  return Errors;
}

std::vector<std::string> compileBad(const std::string &Source) {
  Program P;
  std::vector<std::string> Errors;
  bool Ok = compileSources({Source}, P, Errors);
  EXPECT_FALSE(Ok);
  EXPECT_FALSE(Errors.empty());
  return Errors;
}

} // namespace

// --- Lexer ----------------------------------------------------------------

TEST(Lexer, BasicTokens) {
  auto Toks = lexSource("class Foo { int x = 12; }");
  ASSERT_GE(Toks.size(), 9u);
  EXPECT_EQ(Toks[0].Kind, TokKind::KwClass);
  EXPECT_EQ(Toks[1].Kind, TokKind::Ident);
  EXPECT_EQ(Toks[1].Text, "Foo");
  EXPECT_EQ(Toks[5].Kind, TokKind::Assign);
  EXPECT_EQ(Toks[6].IntVal, 12);
}

TEST(Lexer, DoubleAndExponent) {
  auto Toks = lexSource("1.5 2e3 7");
  EXPECT_EQ(Toks[0].Kind, TokKind::DoubleLit);
  EXPECT_DOUBLE_EQ(Toks[0].DblVal, 1.5);
  EXPECT_EQ(Toks[1].Kind, TokKind::DoubleLit);
  EXPECT_DOUBLE_EQ(Toks[1].DblVal, 2000.0);
  EXPECT_EQ(Toks[2].Kind, TokKind::IntLit);
}

TEST(Lexer, StringEscapes) {
  auto Toks = lexSource("\"a\\n\\\"b\"");
  ASSERT_EQ(Toks[0].Kind, TokKind::StringLit);
  EXPECT_EQ(Toks[0].Text, "a\n\"b");
}

TEST(Lexer, CommentsAreSkipped) {
  auto Toks = lexSource("// line\n/* block\nstill */ 42");
  EXPECT_EQ(Toks[0].Kind, TokKind::IntLit);
  EXPECT_EQ(Toks[0].Line, 3);
}

TEST(Lexer, OperatorDisambiguation) {
  auto Toks = lexSource("<= < << == = >= > >> && & || | != !");
  std::vector<TokKind> Kinds;
  for (auto &T : Toks)
    Kinds.push_back(T.Kind);
  std::vector<TokKind> Want = {
      TokKind::Le,  TokKind::Lt,   TokKind::Shl,  TokKind::EqEq,
      TokKind::Assign, TokKind::Ge, TokKind::Gt,  TokKind::Shr,
      TokKind::AndAnd, TokKind::Amp, TokKind::OrOr, TokKind::Pipe,
      TokKind::NotEq,  TokKind::Bang, TokKind::Eof};
  EXPECT_EQ(Kinds, Want);
}

TEST(Lexer, UnterminatedStringIsError) {
  auto Toks = lexSource("\"abc");
  EXPECT_EQ(Toks.back().Kind, TokKind::Error);
}

TEST(Lexer, UnterminatedCommentIsError) {
  auto Toks = lexSource("/* abc");
  EXPECT_EQ(Toks.back().Kind, TokKind::Error);
}

// --- Parser ------------------------------------------------------------------

TEST(Parser, ClassWithMembers) {
  AstUnit Unit;
  std::vector<std::string> Errors;
  ASSERT_TRUE(parseUnit("class A extends B {\n"
                        "  int x;\n"
                        "  static final double y = 1.5;\n"
                        "  A(int x) { this.x = x; }\n"
                        "  int getX() { return x; }\n"
                        "  static { A.count = 1; }\n"
                        "  static int count;\n"
                        "}\n",
                        Unit, Errors))
      << (Errors.empty() ? "" : Errors[0]);
  ASSERT_EQ(Unit.Classes.size(), 1u);
  const AstClass &A = Unit.Classes[0];
  EXPECT_EQ(A.SuperName, "B");
  EXPECT_EQ(A.Fields.size(), 3u);
  ASSERT_EQ(A.Methods.size(), 3u);
  EXPECT_TRUE(A.Methods[0].IsCtor);
  EXPECT_TRUE(A.Methods[2].IsStaticInit);
}

TEST(Parser, CastVersusParen) {
  AstUnit Unit;
  std::vector<std::string> Errors;
  ASSERT_TRUE(parseUnit("class A { int f(int x) {\n"
                        "  int a = (x) - 1;\n"     // paren expr, not cast
                        "  double d = (double) x;\n" // cast
                        "  A o = (A) null;\n"        // class cast
                        "  return a;\n"
                        "} }",
                        Unit, Errors))
      << (Errors.empty() ? "" : Errors[0]);
}

TEST(Parser, NewArrayWithExtraRank) {
  AstUnit Unit;
  std::vector<std::string> Errors;
  ASSERT_TRUE(parseUnit(
      "class A { void f() { int[][] a = new int[3][]; a[0] = new int[2]; } }",
      Unit, Errors));
}

TEST(Parser, ErrorOnMissingSemi) {
  AstUnit Unit;
  std::vector<std::string> Errors;
  EXPECT_FALSE(parseUnit("class A { void f() { int x = 1 } }", Unit, Errors));
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("expected"), std::string::npos);
}

TEST(Parser, ForLoopVariants) {
  AstUnit Unit;
  std::vector<std::string> Errors;
  ASSERT_TRUE(parseUnit("class A { int f() {\n"
                        "  int s = 0;\n"
                        "  for (int i = 0; i < 10; i = i + 1) { s = s + i; }\n"
                        "  for (;;) { break; }\n"
                        "  return s;\n"
                        "} }",
                        Unit, Errors))
      << (Errors.empty() ? "" : Errors[0]);
}

// --- Compilation ----------------------------------------------------------------

TEST(Compile, SimpleProgramResolvesMain) {
  Program P;
  compileOk({"class Main { static int main() { return 41 + 1; } }"}, P);
  ASSERT_NE(P.MainMethod, -1);
  EXPECT_EQ(P.method(P.MainMethod).Sig, "Main.main()");
}

TEST(Compile, ImplicitObjectSuperclass) {
  Program P;
  compileOk({"class A { }"}, P);
  ClassId A = P.findClass("A");
  ASSERT_NE(A, -1);
  ClassId Obj = P.findClass("Object");
  EXPECT_EQ(P.classDef(A).Super, Obj);
}

TEST(Compile, VirtualDispatchTables) {
  Program P;
  compileOk({"abstract class Shape { abstract double area(); }\n"
             "class Circle extends Shape { double r;\n"
             "  Circle(double r) { this.r = r; }\n"
             "  double area() { return 3.14 * r * r; } }\n"
             "class Square extends Shape { double s;\n"
             "  Square(double s) { this.s = s; }\n"
             "  double area() { return s * s; } }\n"},
            P);
  MethodId Decl = P.findMethodBySig("Shape.area()");
  ASSERT_NE(Decl, -1);
  ClassId Circle = P.findClass("Circle");
  MethodId Impl = P.resolveVirtual(Circle, Decl);
  EXPECT_EQ(P.method(Impl).Sig, "Circle.area()");
  auto Overrides = P.overridesOf(Decl);
  EXPECT_EQ(Overrides.size(), 2u);
}

TEST(Compile, ClinitSynthesizedForStaticInits) {
  Program P;
  compileOk({"class A { static int x = 5; static { x = x + 1; } }"}, P);
  ClassId A = P.findClass("A");
  ASSERT_NE(P.classDef(A).Clinit, -1);
  EXPECT_TRUE(P.method(P.classDef(A).Clinit).IsClinit);
}

TEST(Compile, NoClinitWithoutStaticWork) {
  Program P;
  compileOk({"class A { static int x; int y = 2; }"}, P);
  EXPECT_EQ(P.classDef(P.findClass("A")).Clinit, -1);
}

TEST(Compile, ErrorUnknownType) {
  auto Errors = compileBad("class A { Missing f; }");
  EXPECT_NE(Errors[0].find("unknown type"), std::string::npos);
}

TEST(Compile, ErrorUnknownIdentifier) {
  auto Errors =
      compileBad("class A { int f() { return nosuch; } }");
  EXPECT_NE(Errors[0].find("unknown identifier"), std::string::npos);
}

TEST(Compile, ErrorTypeMismatch) {
  auto Errors =
      compileBad("class A { int f() { return \"str\"; } }");
  EXPECT_NE(Errors[0].find("cannot convert"), std::string::npos);
}

TEST(Compile, ErrorBreakOutsideLoop) {
  auto Errors = compileBad("class A { void f() { break; } }");
  EXPECT_NE(Errors[0].find("break"), std::string::npos);
}

TEST(Compile, ErrorInstantiateAbstract) {
  auto Errors = compileBad(
      "abstract class S { } class A { void f() { S s = new S(); } }");
  EXPECT_NE(Errors[0].find("abstract"), std::string::npos);
}

TEST(Compile, ErrorDuplicateClass) {
  auto Errors = compileBad("class A { } class A { }");
  EXPECT_NE(Errors[0].find("duplicate class"), std::string::npos);
}

TEST(Compile, ErrorInheritanceCycle) {
  auto Errors = compileBad("class A extends B { } class B extends A { }");
  EXPECT_NE(Errors[0].find("cycle"), std::string::npos);
}

TEST(Compile, ErrorThisInStatic) {
  auto Errors = compileBad("class A { static int f() { return this.g(); } "
                           "int g() { return 1; } }");
  EXPECT_NE(Errors[0].find("static"), std::string::npos);
}

TEST(Compile, SpawnResolvesTarget) {
  Program P;
  compileOk({"class Worker { static void run() { } }\n"
             "class Main { static void main() { Sys.spawn(\"Worker.run\"); } "
             "}"},
            P);
  // The Spawn instruction stores the resolved method id in Aux2.
  const Method &Main = P.method(P.findMethodBySig("Main.main()"));
  bool Found = false;
  for (const auto &BB : Main.Blocks)
    for (const auto &In : BB.Instrs)
      if (In.Op == Opcode::CallNative &&
          NativeId(In.Aux) == NativeId::Spawn) {
        Found = true;
        EXPECT_EQ(P.method(In.Aux2).Sig, "Worker.run()");
      }
  EXPECT_TRUE(Found);
}

TEST(Compile, ErrorSpawnNonLiteral) {
  auto Errors = compileBad("class Main { static void main() { String s = "
                           "\"X.y\"; Sys.spawn(s); } }");
  EXPECT_NE(Errors[0].find("spawn"), std::string::npos);
}
