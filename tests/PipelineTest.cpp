//===- PipelineTest.cpp - End-to-end build/profile/optimize tests -----------===//

#include "src/core/Builder.h"
#include "src/lang/Compile.h"

#include <gtest/gtest.h>

using namespace nimg;

namespace {

/// A small but non-trivial workload: polymorphism, arrays, statics with
/// initializers, string building, hot and cold code.
const char *kWorkload = R"(
abstract class Shape {
  abstract double area();
}
class Circle extends Shape {
  double r;
  Circle(double r) { this.r = r; }
  double area() { return 3.14159 * r * r; }
}
class Rect extends Shape {
  double w; double h;
  Rect(double w, double h) { this.w = w; this.h = h; }
  double area() { return w * h; }
}
class Registry {
  static String banner = "shape registry v" + 1;
  static int created = 0;
  static int[] histogram = new int[16];
  static { histogram[0] = 1; }
  static void note(int kind) {
    created = created + 1;
    histogram[kind] = histogram[kind] + 1;
  }
}
class ColdPath {
  static String unusedBlob = "a long constant that only cold code touches";
  static int neverCalled(int x) {
    int acc = 0;
    for (int i = 0; i < x; i = i + 1) { acc = acc + i * i; }
    Sys.print(ColdPath.unusedBlob);
    return acc;
  }
}
class Main {
  static double work() {
    Shape[] shapes = new Shape[20];
    for (int i = 0; i < shapes.length; i = i + 1) {
      if (i % 2 == 0) {
        shapes[i] = new Circle(1.0 + i);
        Registry.note(0);
      } else {
        shapes[i] = new Rect(2.0, 1.0 + i);
        Registry.note(1);
      }
    }
    double total = 0.0;
    for (int i = 0; i < shapes.length; i = i + 1) {
      total = total + shapes[i].area();
    }
    if (total < 0.0) { ColdPath.neverCalled(100); }
    return total;
  }
  static int main() {
    double t = work();
    Sys.print(Registry.banner + ": " + Registry.created);
    return (int) t;
  }
}
)";

struct Env {
  Program P;
  std::vector<std::string> Errors;

  Env() {
    bool Ok = compileSources({kWorkload}, P, Errors);
    EXPECT_TRUE(Ok);
    for (auto &E : Errors)
      ADD_FAILURE() << E;
  }
};

} // namespace

TEST(Reachability, ConservativeButBounded) {
  Env E;
  ensureClassMetaClass(E.P);
  ReachabilityResult R = analyzeReachability(E.P);
  EXPECT_TRUE(R.ReachableMethods[size_t(E.P.MainMethod)]);
  // ColdPath.neverCalled is statically referenced in dead code, so the
  // conservative analysis includes it.
  MethodId Cold = E.P.findMethodBySig("ColdPath.neverCalled(int)");
  ASSERT_NE(Cold, -1);
  EXPECT_TRUE(R.ReachableMethods[size_t(Cold)]);
  // Both shape implementations reachable through the virtual call.
  MethodId Area = E.P.findMethodBySig("Shape.area()");
  EXPECT_EQ(R.reachableTargets(E.P, Area).size(), 2u);
  EXPECT_FALSE(R.isMonomorphic(E.P, Area));
}

TEST(Inliner, InstrumentationDivergesInlining) {
  Env E;
  ensureClassMetaClass(E.P);
  ReachabilityResult R = analyzeReachability(E.P);
  InlinerConfig Cfg;
  CompiledProgram Plain = buildCompilationUnits(E.P, R, Cfg, false);
  CompiledProgram Instr = buildCompilationUnits(E.P, R, Cfg, true);
  EXPECT_EQ(Plain.CUs.size(), Instr.CUs.size());
  EXPECT_NE(Plain.InlineFingerprint, Instr.InlineFingerprint);
  // Instrumented code is larger.
  EXPECT_GT(Instr.totalCodeSize(), Plain.totalCodeSize());
  // CUs are in alphabetical root order by default.
  for (size_t I = 1; I < Plain.CUs.size(); ++I)
    EXPECT_LE(E.P.method(Plain.CUs[I - 1].Root).Sig,
              E.P.method(Plain.CUs[I].Root).Sig);
}

TEST(Inliner, InlineMapsAreConsistent) {
  Env E;
  ensureClassMetaClass(E.P);
  ReachabilityResult R = analyzeReachability(E.P);
  CompiledProgram CP = buildCompilationUnits(E.P, R, InlinerConfig(), false);
  for (const CompilationUnit &CU : CP.CUs) {
    ASSERT_FALSE(CU.Copies.empty());
    EXPECT_EQ(CU.Copies[0].Method, CU.Root);
    uint64_t SizeSum = 0;
    for (const InlineCopy &C : CU.Copies)
      SizeSum += C.CodeSize;
    EXPECT_EQ(SizeSum, CU.CodeSize);
    for (const auto &[Key, CopyIdx] : CU.InlineMap) {
      ASSERT_LT(size_t(CopyIdx), CU.Copies.size());
      EXPECT_EQ(CU.Copies[size_t(CopyIdx)].ParentCopy, int32_t(Key >> 32));
    }
  }
}

TEST(Snapshot, RootsAndParentsAreWellFormed) {
  Env E;
  BuildConfig Cfg;
  Cfg.Seed = 7;
  NativeImage Img = buildNativeImage(E.P, Cfg);
  ASSERT_FALSE(Img.Built.Failed) << Img.Built.FailureMessage;
  ASSERT_GT(Img.Snapshot.Entries.size(), 0u);
  size_t Roots = 0, Interned = 0, Statics = 0, Data = 0;
  for (size_t I = 0; I < Img.Snapshot.Entries.size(); ++I) {
    const SnapshotEntry &S = Img.Snapshot.Entries[I];
    if (S.IsRoot) {
      ++Roots;
      switch (S.Reason.Kind) {
      case InclusionReasonKind::InternedString:
        ++Interned;
        break;
      case InclusionReasonKind::StaticField:
        ++Statics;
        break;
      case InclusionReasonKind::DataSection:
        ++Data;
        break;
      default:
        break;
      }
    } else {
      ASSERT_GE(S.ParentEntry, 0);
      ASSERT_LT(size_t(S.ParentEntry), I + Img.Snapshot.Entries.size());
      EXPECT_GE(S.ParentSlot, 0);
    }
    EXPECT_GT(S.SizeBytes, 0u);
  }
  EXPECT_GT(Roots, 0u);
  EXPECT_GT(Interned, 0u); // string literals
  EXPECT_GT(Statics, 0u);  // Registry.banner / histogram
  EXPECT_GT(Data, 0u);     // class metadata
}

TEST(Snapshot, IdTablesAssignedToStoredEntries) {
  Env E;
  BuildConfig Cfg;
  Cfg.Seed = 3;
  NativeImage Img = buildNativeImage(E.P, Cfg);
  for (size_t I = 0; I < Img.Snapshot.Entries.size(); ++I) {
    bool Stored = !Img.Snapshot.Entries[I].Elided;
    EXPECT_EQ(Img.Ids.IncrementalIds[I] != 0, Stored);
    if (Stored) {
      EXPECT_NE(Img.Ids.StructuralHashes[I], 0u);
      EXPECT_NE(Img.Ids.HeapPathHashes[I], 0u);
    }
  }
}

TEST(Snapshot, SeedChangesInitSeqButNotSemantics) {
  Env E1, E2;
  BuildConfig C1, C2;
  C1.Seed = 11;
  C2.Seed = 22;
  NativeImage A = buildNativeImage(E1.P, C1);
  NativeImage B = buildNativeImage(E2.P, C2);
  // Different permutations usually give different init orders.
  EXPECT_NE(A.Built.InitOrder, B.Built.InitOrder);
  // But runtime behaviour is identical.
  RunConfig RC;
  RunStats SA = runImage(A, RC);
  RunStats SB = runImage(B, RC);
  EXPECT_FALSE(SA.Trapped) << SA.TrapMessage;
  EXPECT_EQ(SA.Output, SB.Output);
}

TEST(Image, LayoutCoversEverythingOnce) {
  Env E;
  BuildConfig Cfg;
  NativeImage Img = buildNativeImage(E.P, Cfg);
  // Every CU placed exactly once, no overlaps.
  std::vector<std::pair<uint64_t, uint64_t>> Ranges;
  for (size_t Cu = 0; Cu < Img.Code.CUs.size(); ++Cu)
    Ranges.emplace_back(Img.Layout.CuOffsets[Cu],
                        Img.Layout.CuOffsets[Cu] + Img.Code.CUs[Cu].CodeSize);
  std::sort(Ranges.begin(), Ranges.end());
  for (size_t I = 1; I < Ranges.size(); ++I)
    EXPECT_LE(Ranges[I - 1].second, Ranges[I].first);
  EXPECT_LE(Ranges.back().second, Img.Layout.NativeTailOffset);
  EXPECT_EQ(Img.Layout.TextSize,
            Img.Layout.NativeTailOffset + Img.Layout.NativeTailSize);
  // Objects: stored entries have offsets beyond the statics area.
  for (size_t I = 0; I < Img.Snapshot.Entries.size(); ++I) {
    uint64_t Off = Img.Layout.ObjectOffsets[I];
    if (Img.Snapshot.Entries[I].Elided) {
      EXPECT_EQ(Off, ImageLayout::NotStored);
    } else {
      EXPECT_GE(Off, Img.Layout.StaticsSize);
      EXPECT_LT(Off, Img.Layout.HeapSize);
    }
  }
}

TEST(Engine, RunsAndCountsFaults) {
  Env E;
  BuildConfig Cfg;
  NativeImage Img = buildNativeImage(E.P, Cfg);
  RunConfig RC;
  RunStats S = runImage(Img, RC);
  ASSERT_FALSE(S.Trapped) << S.TrapMessage;
  EXPECT_FALSE(S.FuelExhausted);
  EXPECT_GT(S.TextFaults, 0u);
  EXPECT_GT(S.HeapFaults, 0u);
  EXPECT_GT(S.Instructions, 0u);
  EXPECT_NE(S.Output.find("shape registry"), std::string::npos);
  EXPECT_GT(S.StoredObjectsTouched, 0u);
  EXPECT_LT(S.StoredObjectsTouched, S.StoredObjectsTotal);
  // Warm cache faults nothing.
  RunConfig Warm = RC;
  Warm.ColdCache = false;
  RunStats W = runImage(Img, Warm);
  EXPECT_EQ(W.totalFaults(), 0u);
  EXPECT_EQ(W.Output, S.Output);
}

TEST(Profiles, CollectionProducesNonEmptyProfiles) {
  Env E;
  BuildConfig Cfg;
  Cfg.Seed = 100;
  RunConfig RC;
  CollectedProfiles Prof = collectProfiles(E.P, Cfg, RC);
  EXPECT_FALSE(Prof.Cu.Sigs.empty());
  EXPECT_FALSE(Prof.Method.Sigs.empty());
  EXPECT_FALSE(Prof.HeapPath.Ids.empty());
  EXPECT_EQ(Prof.HeapPath.Ids.size(), Prof.IncrementalId.Ids.size());
  // Method profile is a superset of executed cu roots modulo inlining;
  // both must contain main.
  auto Contains = [](const CodeProfile &P, const std::string &Sig) {
    for (const std::string &S : P.Sigs)
      if (S == Sig)
        return true;
    return false;
  };
  EXPECT_TRUE(Contains(Prof.Cu, "Main.main()"));
  EXPECT_TRUE(Contains(Prof.Method, "Main.main()"));
  EXPECT_TRUE(Contains(Prof.Method, "Circle.area()"));
  // The unexecuted cold method appears in no profile.
  EXPECT_FALSE(Contains(Prof.Cu, "ColdPath.neverCalled(int)"));
  EXPECT_FALSE(Contains(Prof.Method, "ColdPath.neverCalled(int)"));
  // Instrumented runs cost more than plain runs.
  EXPECT_GT(Prof.MethodRun.ProbeUnits, 0u);
}

TEST(Profiles, CsvRoundTrip) {
  CodeProfile CP;
  CP.Sigs = {"A.b()", "C.d(int,double)"};
  CodeProfile CP2 = CodeProfile::fromCsv(CP.toCsv());
  EXPECT_EQ(CP.Sigs, CP2.Sigs);
  HeapProfile HP;
  HP.Ids = {0x1234abcdULL, ~uint64_t(0), 1};
  HeapProfile HP2 = HeapProfile::fromCsv(HP.toCsv());
  EXPECT_EQ(HP.Ids, HP2.Ids);
}

namespace {

/// Generates a workload big enough for layout effects to show: NumClasses
/// classes, each with one hot method (executed) and several large cold
/// methods (reachable through a never-taken branch), plus per-class static
/// object state of which only the hot part is accessed.
std::string syntheticWorkload(int NumClasses) {
  std::string Src;
  std::string ColdCalls;
  std::string HotCalls;
  for (int I = 0; I < NumClasses; ++I) {
    char Name[16];
    std::snprintf(Name, sizeof(Name), "W%02d", I);
    Src += std::string("class ") + Name + " {\n";
    Src += "  static int hotState = " + std::to_string(I) + ";\n";
    Src += "  static int[] coldState = new int[64];\n";
    Src += "  static int hot(int x) { hotState = hotState + x; "
           "return hotState; }\n";
    for (int C = 0; C < 6; ++C) {
      Src += "  static int cold" + std::to_string(C) + "(int x) {\n";
      Src += "    int acc = 0;\n";
      for (int K = 0; K < 12; ++K)
        Src += "    acc = acc + (x * " + std::to_string(K + 2) +
               ") % (x + " + std::to_string(K + 1) + ") + coldState[" +
               std::to_string(K) + "];\n";
      Src += "    return acc;\n  }\n";
      ColdCalls += std::string("      s = s + ") + Name + ".cold" +
                   std::to_string(C) + "(s);\n";
    }
    Src += "}\n";
    HotCalls += std::string("      s = s + ") + Name + ".hot(i);\n";
  }
  Src += "class Main {\n  static int main() {\n    int s = 1;\n"
         "    for (int i = 0; i < 3; i = i + 1) {\n" +
         HotCalls +
         "    }\n    if (s < 0) {\n" + ColdCalls +
         "    }\n    Sys.printInt(s);\n    return s;\n  }\n}\n";
  return Src;
}

} // namespace

TEST(Optimized, AllStrategiesPreserveBehaviourAndReduceFaults) {
  Program P;
  std::vector<std::string> Errors;
  ASSERT_TRUE(compileSources({syntheticWorkload(40)}, P, Errors));
  RunConfig RC;
  BuildConfig InstrCfg;
  InstrCfg.Seed = 1000;
  CollectedProfiles Prof = collectProfiles(P, InstrCfg, RC);

  BuildConfig Base;
  Base.Seed = 1;
  NativeImage Baseline = buildNativeImage(P, Base);
  RunStats BS = runImage(Baseline, RC);
  ASSERT_FALSE(BS.Trapped) << BS.TrapMessage;
  ASSERT_GT(BS.TextFaults, 3u);

  auto CheckVariant = [&](BuildConfig Cfg, const char *Name) {
    Cfg.Seed = 2;
    NativeImage Img = buildNativeImage(P, Cfg);
    RunStats S = runImage(Img, RC);
    EXPECT_FALSE(S.Trapped) << Name << ": " << S.TrapMessage;
    EXPECT_EQ(S.Output, BS.Output) << Name;
    return S;
  };

  BuildConfig CuCfg;
  CuCfg.CodeOrder = CodeStrategy::CuOrder;
  CuCfg.CodeProf = &Prof.Cu;
  RunStats CuS = CheckVariant(CuCfg, "cu");
  EXPECT_LT(CuS.TextFaults, BS.TextFaults);

  BuildConfig MCfg;
  MCfg.CodeOrder = CodeStrategy::MethodOrder;
  MCfg.CodeProf = &Prof.Method;
  RunStats MS = CheckVariant(MCfg, "method");
  EXPECT_LT(MS.TextFaults, BS.TextFaults);

  for (HeapStrategy HS :
       {HeapStrategy::IncrementalId, HeapStrategy::StructuralHash,
        HeapStrategy::HeapPath}) {
    BuildConfig HCfg;
    HCfg.UseHeapOrder = true;
    HCfg.HeapOrder = HS;
    const HeapProfile &HP = Prof.forStrategy(HS);
    HCfg.HeapProf = &HP;
    RunStats S = CheckVariant(HCfg, heapStrategyName(HS));
    EXPECT_LE(S.HeapFaults, BS.HeapFaults) << heapStrategyName(HS);
  }

  // Combined cu + heap path.
  BuildConfig Combined;
  Combined.CodeOrder = CodeStrategy::CuOrder;
  Combined.CodeProf = &Prof.Cu;
  Combined.UseHeapOrder = true;
  Combined.HeapOrder = HeapStrategy::HeapPath;
  Combined.HeapProf = &Prof.HeapPath;
  RunStats CS = CheckVariant(Combined, "cu+heap path");
  EXPECT_LT(CS.totalFaults(), BS.totalFaults());
  EXPECT_LT(CS.TimeNs, BS.TimeNs);
}

TEST(Optimized, HeapMatcherMatchesMostObjects) {
  Env E;
  RunConfig RC;
  BuildConfig InstrCfg;
  InstrCfg.Seed = 500;
  CollectedProfiles Prof = collectProfiles(E.P, InstrCfg, RC);

  BuildConfig Cfg;
  Cfg.Seed = 9;
  NativeImage Img = buildNativeImage(E.P, Cfg);
  HeapMatchStats Stats;
  std::vector<int32_t> Order = orderObjectsWithProfile(
      Img.Snapshot, Img.Ids, HeapStrategy::HeapPath, Prof.HeapPath, &Stats);
  EXPECT_EQ(Order.size(), Img.Snapshot.numStored());
  EXPECT_GT(Stats.ProfileIds, 0u);
  // Heap-path matching should land most profiled objects.
  EXPECT_GT(Stats.Matched * 2, Stats.ProfileIds);
}
