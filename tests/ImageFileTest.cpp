//===- ImageFileTest.cpp - Image serialization round-trip tests -------------===//

#include "src/core/Builder.h"
#include "src/image/ImageFile.h"
#include "src/lang/Compile.h"
#include "src/runtime/ExecEngine.h"

#include <gtest/gtest.h>

using namespace nimg;

namespace {

const char *kSource = R"MJ(
class Pair { int a; String label;
  Pair(int a, String label) { this.a = a; this.label = label; } }
class Registry {
  static String banner = "serialized";
  static Pair[] pairs = new Pair[6];
  static {
    for (int i = 0; i < pairs.length; i = i + 1) {
      pairs[i] = new Pair(i, banner + "-" + i);
    }
  }
}
class Main { static int main() {
  String same1 = "shared-literal";
  String same2 = "shared-literal";
  int id = 0;
  if (same1 == same2) { id = 1; }
  Sys.print(Registry.banner + ":" + Registry.pairs[3].a + ":" + id);
  return Registry.pairs.length;
} }
)MJ";

struct Fixture {
  Program P;
  NativeImage Img;

  Fixture() {
    std::vector<std::string> Errors;
    bool Ok = compileSources({kSource}, P, Errors);
    EXPECT_TRUE(Ok);
    for (auto &E : Errors)
      ADD_FAILURE() << E;
    BuildConfig Cfg;
    Cfg.Seed = 21;
    Img = buildNativeImage(P, Cfg);
  }
};

} // namespace

TEST(ImageFile, FingerprintIsStableAndSensitive) {
  Fixture F;
  EXPECT_EQ(programFingerprint(F.P), programFingerprint(F.P));
  Program Other;
  std::vector<std::string> Errors;
  ASSERT_TRUE(compileSources({"class Main { static int main() { return 1; } "
                              "}"},
                             Other, Errors));
  EXPECT_NE(programFingerprint(F.P), programFingerprint(Other));
}

TEST(ImageFile, RoundTripPreservesEverything) {
  Fixture F;
  std::vector<uint8_t> Bytes = serializeImage(F.P, F.Img);
  EXPECT_GT(Bytes.size(), 1000u);

  NativeImage Loaded;
  std::string Error;
  ASSERT_TRUE(deserializeImage(F.P, Bytes, Loaded, Error)) << Error;

  EXPECT_EQ(Loaded.Seed, F.Img.Seed);
  EXPECT_EQ(Loaded.Code.CUs.size(), F.Img.Code.CUs.size());
  EXPECT_EQ(Loaded.Code.InlineFingerprint, F.Img.Code.InlineFingerprint);
  EXPECT_EQ(Loaded.Snapshot.Entries.size(), F.Img.Snapshot.Entries.size());
  EXPECT_EQ(Loaded.Ids.HeapPathHashes, F.Img.Ids.HeapPathHashes);
  EXPECT_EQ(Loaded.Layout.TextSize, F.Img.Layout.TextSize);
  EXPECT_EQ(Loaded.Layout.HeapSize, F.Img.Layout.HeapSize);
  EXPECT_EQ(Loaded.Layout.ObjectOffsets, F.Img.Layout.ObjectOffsets);
  EXPECT_EQ(Loaded.Built.BuildHeap->numCells(),
            F.Img.Built.BuildHeap->numCells());
}

TEST(ImageFile, LoadedImageRunsIdentically) {
  Fixture F;
  std::vector<uint8_t> Bytes = serializeImage(F.P, F.Img);
  NativeImage Loaded;
  std::string Error;
  ASSERT_TRUE(deserializeImage(F.P, Bytes, Loaded, Error)) << Error;

  RunConfig RC;
  RunStats A = runImage(F.Img, RC);
  RunStats B = runImage(Loaded, RC);
  ASSERT_FALSE(A.Trapped) << A.TrapMessage;
  ASSERT_FALSE(B.Trapped) << B.TrapMessage;
  EXPECT_EQ(A.Output, B.Output);
  // Intern-table restoration keeps literal identity: ":1" in the output.
  EXPECT_NE(B.Output.find(":1"), std::string::npos) << B.Output;
  EXPECT_EQ(A.TextFaults, B.TextFaults);
  EXPECT_EQ(A.HeapFaults, B.HeapFaults);
  EXPECT_EQ(A.Instructions, B.Instructions);
}

TEST(ImageFile, RejectsWrongProgram) {
  Fixture F;
  std::vector<uint8_t> Bytes = serializeImage(F.P, F.Img);
  Program Other;
  std::vector<std::string> Errors;
  ASSERT_TRUE(compileSources(
      {"class Main { static int main() { return 2; } }"}, Other, Errors));
  NativeImage Loaded;
  std::string Error;
  EXPECT_FALSE(deserializeImage(Other, Bytes, Loaded, Error));
  EXPECT_NE(Error.find("fingerprint"), std::string::npos);
}

TEST(ImageFile, RejectsGarbageAndTruncation) {
  Fixture F;
  NativeImage Loaded;
  std::string Error;
  std::vector<uint8_t> Garbage = {1, 2, 3, 4};
  EXPECT_FALSE(deserializeImage(F.P, Garbage, Loaded, Error));

  std::vector<uint8_t> Bytes = serializeImage(F.P, F.Img);
  Bytes.resize(Bytes.size() / 2); // truncate
  NativeImage Loaded2;
  EXPECT_FALSE(deserializeImage(F.P, Bytes, Loaded2, Error));
}
