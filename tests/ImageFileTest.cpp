//===- ImageFileTest.cpp - Image serialization round-trip tests -------------===//

#include "src/core/Builder.h"
#include "src/image/ImageFile.h"
#include "src/lang/Compile.h"
#include "src/runtime/ExecEngine.h"

#include <gtest/gtest.h>

using namespace nimg;

namespace {

const char *kSource = R"MJ(
class Pair { int a; String label;
  Pair(int a, String label) { this.a = a; this.label = label; } }
class Registry {
  static String banner = "serialized";
  static Pair[] pairs = new Pair[6];
  static {
    for (int i = 0; i < pairs.length; i = i + 1) {
      pairs[i] = new Pair(i, banner + "-" + i);
    }
  }
}
class ColdPath {
  static int classify(int x) {
    int y = x + 1;
    if (x < 0) {
      y = x * x;
      y = y * 3 + 7;
      y = y - x * 5;
      y = y + 11;
    }
    return y;
  }
}
class Main { static int main() {
  String same1 = "shared-literal";
  String same2 = "shared-literal";
  int id = 0;
  if (same1 == same2) { id = 1; }
  int acc = 0;
  for (int i = 0; i < 4; i = i + 1) { acc = acc + ColdPath.classify(i); }
  Sys.print(Registry.banner + ":" + Registry.pairs[3].a + ":" + id);
  return Registry.pairs.length;
} }
)MJ";

struct Fixture {
  Program P;
  NativeImage Img;

  Fixture() {
    std::vector<std::string> Errors;
    bool Ok = compileSources({kSource}, P, Errors);
    EXPECT_TRUE(Ok);
    for (auto &E : Errors)
      ADD_FAILURE() << E;
    BuildConfig Cfg;
    Cfg.Seed = 21;
    Img = buildNativeImage(P, Cfg);
  }
};

} // namespace

TEST(ImageFile, FingerprintIsStableAndSensitive) {
  Fixture F;
  EXPECT_EQ(programFingerprint(F.P), programFingerprint(F.P));
  Program Other;
  std::vector<std::string> Errors;
  ASSERT_TRUE(compileSources({"class Main { static int main() { return 1; } "
                              "}"},
                             Other, Errors));
  EXPECT_NE(programFingerprint(F.P), programFingerprint(Other));
}

TEST(ImageFile, RoundTripPreservesEverything) {
  Fixture F;
  std::vector<uint8_t> Bytes = serializeImage(F.P, F.Img);
  EXPECT_GT(Bytes.size(), 1000u);

  NativeImage Loaded;
  std::string Error;
  ASSERT_TRUE(deserializeImage(F.P, Bytes, Loaded, Error)) << Error;

  EXPECT_EQ(Loaded.Seed, F.Img.Seed);
  EXPECT_EQ(Loaded.Code.CUs.size(), F.Img.Code.CUs.size());
  EXPECT_EQ(Loaded.Code.InlineFingerprint, F.Img.Code.InlineFingerprint);
  EXPECT_EQ(Loaded.Snapshot.Entries.size(), F.Img.Snapshot.Entries.size());
  EXPECT_EQ(Loaded.Ids.HeapPathHashes, F.Img.Ids.HeapPathHashes);
  EXPECT_EQ(Loaded.Layout.TextSize, F.Img.Layout.TextSize);
  EXPECT_EQ(Loaded.Layout.HeapSize, F.Img.Layout.HeapSize);
  EXPECT_EQ(Loaded.Layout.ObjectOffsets, F.Img.Layout.ObjectOffsets);
  EXPECT_EQ(Loaded.Built.BuildHeap->numCells(),
            F.Img.Built.BuildHeap->numCells());
}

TEST(ImageFile, LoadedImageRunsIdentically) {
  Fixture F;
  std::vector<uint8_t> Bytes = serializeImage(F.P, F.Img);
  NativeImage Loaded;
  std::string Error;
  ASSERT_TRUE(deserializeImage(F.P, Bytes, Loaded, Error)) << Error;

  RunConfig RC;
  RunStats A = runImage(F.Img, RC);
  RunStats B = runImage(Loaded, RC);
  ASSERT_FALSE(A.Trapped) << A.TrapMessage;
  ASSERT_FALSE(B.Trapped) << B.TrapMessage;
  EXPECT_EQ(A.Output, B.Output);
  // Intern-table restoration keeps literal identity: ":1" in the output.
  EXPECT_NE(B.Output.find(":1"), std::string::npos) << B.Output;
  EXPECT_EQ(A.TextFaults, B.TextFaults);
  EXPECT_EQ(A.HeapFaults, B.HeapFaults);
  EXPECT_EQ(A.Instructions, B.Instructions);
}

TEST(ImageFile, SplitGeometryRoundTripsAndRunsIdentically) {
  // ColdPath.classify's negative arm never executes, so the split build
  // has a real cold tail to serialize.
  Fixture F;
  BuildConfig PCfg;
  PCfg.Seed = 21;
  CollectedProfiles Prof = collectProfiles(F.P, PCfg, RunConfig());
  BuildConfig Cfg;
  Cfg.Seed = 21;
  Cfg.Split = SplitMode::HotCold;
  Cfg.BlockProf = &Prof.Blocks;
  NativeImage Img = buildNativeImage(F.P, Cfg);
  ASSERT_FALSE(Img.Built.Failed) << Img.Built.FailureMessage;
  ASSERT_TRUE(Img.Split.active());
  ASSERT_GT(Img.Split.SplitCus, 0u) << "workload produced no split CU";
  ASSERT_GT(Img.Layout.ColdTailSize, 0u);

  std::vector<uint8_t> Bytes = serializeImage(F.P, Img);
  NativeImage Loaded;
  std::string Error;
  ASSERT_TRUE(deserializeImage(F.P, Bytes, Loaded, Error)) << Error;

  // Split accounting and decisions survive the round-trip bit-for-bit.
  EXPECT_TRUE(Loaded.Split.active());
  EXPECT_EQ(Loaded.Split.DecisionFingerprint, Img.Split.DecisionFingerprint);
  EXPECT_EQ(Loaded.Split.SplitCus, Img.Split.SplitCus);
  EXPECT_EQ(Loaded.Split.DegradedCus, Img.Split.DegradedCus);
  EXPECT_EQ(Loaded.Split.HotBytes, Img.Split.HotBytes);
  EXPECT_EQ(Loaded.Split.ColdBytes, Img.Split.ColdBytes);
  EXPECT_EQ(Loaded.Split.StubBytes, Img.Split.StubBytes);
  ASSERT_EQ(Loaded.Split.PerCu.size(), Img.Split.PerCu.size());
  for (size_t Cu = 0; Cu < Img.Split.PerCu.size(); ++Cu) {
    const CuSplit &A = Img.Split.PerCu[Cu], &B = Loaded.Split.PerCu[Cu];
    EXPECT_EQ(A.Split, B.Split);
    EXPECT_EQ(A.HotSize, B.HotSize);
    EXPECT_EQ(A.ColdSize, B.ColdSize);
    EXPECT_EQ(A.StubBytes, B.StubBytes);
    ASSERT_EQ(A.Copies.size(), B.Copies.size());
    for (size_t C = 0; C < A.Copies.size(); ++C) {
      EXPECT_EQ(A.Copies[C].HotOffset, B.Copies[C].HotOffset);
      EXPECT_EQ(A.Copies[C].ColdOffset, B.Copies[C].ColdOffset);
      ASSERT_EQ(A.Copies[C].Blocks.size(), B.Copies[C].Blocks.size());
      for (size_t Blk = 0; Blk < A.Copies[C].Blocks.size(); ++Blk) {
        EXPECT_EQ(A.Copies[C].Blocks[Blk].Offset,
                  B.Copies[C].Blocks[Blk].Offset);
        EXPECT_EQ(A.Copies[C].Blocks[Blk].Size, B.Copies[C].Blocks[Blk].Size);
        EXPECT_EQ(A.Copies[C].Blocks[Blk].Cold, B.Copies[C].Blocks[Blk].Cold);
      }
    }
  }
  // Cold-tail layout geometry survives too.
  EXPECT_EQ(Loaded.Layout.CuColdOffsets, Img.Layout.CuColdOffsets);
  EXPECT_EQ(Loaded.Layout.ColdTailOffset, Img.Layout.ColdTailOffset);
  EXPECT_EQ(Loaded.Layout.ColdTailSize, Img.Layout.ColdTailSize);

  // The loaded split image pages exactly like the original.
  RunConfig RC;
  RunStats A = runImage(Img, RC);
  RunStats B = runImage(Loaded, RC);
  ASSERT_FALSE(A.Trapped) << A.TrapMessage;
  ASSERT_FALSE(B.Trapped) << B.TrapMessage;
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.TextFaults, B.TextFaults);
  EXPECT_EQ(A.TextColdFaults, B.TextColdFaults);
  EXPECT_EQ(A.HeapFaults, B.HeapFaults);
  EXPECT_EQ(A.Instructions, B.Instructions);
}

TEST(ImageFile, HugePageGeometryRoundTrips) {
  Fixture F;
  BuildConfig Cfg;
  Cfg.Seed = 21;
  Cfg.Image.HugePages = 2;
  NativeImage Img = buildNativeImage(F.P, Cfg);
  ASSERT_FALSE(Img.Built.Failed) << Img.Built.FailureMessage;
  ASSERT_GT(Img.Layout.HugePagesRequested, 0u);

  std::vector<uint8_t> Bytes = serializeImage(F.P, Img);
  NativeImage Loaded;
  std::string Error;
  ASSERT_TRUE(deserializeImage(F.P, Bytes, Loaded, Error)) << Error;
  EXPECT_EQ(Loaded.Layout.HugePagesRequested, Img.Layout.HugePagesRequested);
  EXPECT_EQ(Loaded.Layout.HugePages, Img.Layout.HugePages);
  EXPECT_EQ(Loaded.Layout.HugeRegionSize, Img.Layout.HugeRegionSize);
  EXPECT_EQ(Loaded.Split.DecisionFingerprint, Img.Split.DecisionFingerprint);

  // The loaded image pages (and is charged) exactly like the original,
  // including the per-size fault split.
  RunConfig RC;
  RunStats A = runImage(Img, RC);
  RunStats B = runImage(Loaded, RC);
  ASSERT_FALSE(A.Trapped) << A.TrapMessage;
  ASSERT_FALSE(B.Trapped) << B.TrapMessage;
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.TextFaults, B.TextFaults);
  EXPECT_EQ(A.TextHugeFaults, B.TextHugeFaults);
  EXPECT_EQ(A.TimeNs, B.TimeNs);
}

TEST(ImageFile, LoadsV1ImagesWithoutHugeFields) {
  // Emulate a pre-huge-page "NIM1" file: the V1 payload is exactly the V2
  // bytes minus the appended page-size tail, with the old magic. For an
  // image with no huge region the tail is fixed-size: requested/effective/
  // region (4+4+8) + region count (4) + two table entries (1+8+8+4 each).
  Fixture F;
  std::vector<uint8_t> Bytes = serializeImage(F.P, F.Img);
  ASSERT_EQ(F.Img.Layout.HugeRegionSize, 0u);
  constexpr size_t kV2TailBytes = 4 + 4 + 8 + 4 + 2 * (1 + 8 + 8 + 4);
  ASSERT_GT(Bytes.size(), kV2TailBytes);
  Bytes.resize(Bytes.size() - kV2TailBytes);
  Bytes[0] = 0x4E; // "NIM1", little-endian
  Bytes[1] = 0x49;
  Bytes[2] = 0x4D;
  Bytes[3] = 0x31;

  NativeImage Loaded;
  std::string Error;
  ASSERT_TRUE(deserializeImage(F.P, Bytes, Loaded, Error)) << Error;
  EXPECT_EQ(Loaded.Layout.HugePagesRequested, 0u);
  EXPECT_EQ(Loaded.Layout.HugePages, 0u);
  EXPECT_EQ(Loaded.Layout.HugeRegionSize, 0u);

  RunConfig RC;
  RunStats A = runImage(F.Img, RC);
  RunStats B = runImage(Loaded, RC);
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.TextFaults, B.TextFaults);
  EXPECT_EQ(A.TimeNs, B.TimeNs);
}

TEST(ImageFile, RejectsWrongProgram) {
  Fixture F;
  std::vector<uint8_t> Bytes = serializeImage(F.P, F.Img);
  Program Other;
  std::vector<std::string> Errors;
  ASSERT_TRUE(compileSources(
      {"class Main { static int main() { return 2; } }"}, Other, Errors));
  NativeImage Loaded;
  std::string Error;
  EXPECT_FALSE(deserializeImage(Other, Bytes, Loaded, Error));
  EXPECT_NE(Error.find("fingerprint"), std::string::npos);
}

TEST(ImageFile, RejectsGarbageAndTruncation) {
  Fixture F;
  NativeImage Loaded;
  std::string Error;
  std::vector<uint8_t> Garbage = {1, 2, 3, 4};
  EXPECT_FALSE(deserializeImage(F.P, Garbage, Loaded, Error));

  std::vector<uint8_t> Bytes = serializeImage(F.P, F.Img);
  Bytes.resize(Bytes.size() / 2); // truncate
  NativeImage Loaded2;
  EXPECT_FALSE(deserializeImage(F.P, Bytes, Loaded2, Error));
}
