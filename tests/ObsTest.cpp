//===- ObsTest.cpp - Metrics, span tracing, and startup-report tests --------===//
//
// Covers the observability subsystem end to end: histogram bucket math,
// per-thread counter merging, JSON writer/parser round trips, Chrome
// trace-event well-formedness (parsed back, not string-matched), and the
// startup report's contract that its fault counts equal the run's
// PagingSim counts exactly.
//
//===----------------------------------------------------------------------===//

#include "src/obs/Json.h"
#include "src/obs/Metrics.h"
#include "src/obs/SpanTracer.h"
#include "src/obs/StartupReport.h"

#include "src/core/Builder.h"
#include "src/lang/Compile.h"

#include <gtest/gtest.h>

#include <thread>

using namespace nimg;
using namespace nimg::obs;

//===----------------------------------------------------------------------===//
// JSON writer + parser.
//===----------------------------------------------------------------------===//

TEST(Json, WriterEscapesAndNesting) {
  std::string Out;
  JsonWriter W(Out);
  W.beginObject();
  W.member("plain", "abc");
  W.member("quoted", "say \"hi\"\n\ttab\\slash");
  W.member("ctrl", std::string("\x01\x1f", 2));
  W.key("nested");
  W.beginArray();
  W.value(uint64_t(42));
  W.value(-7);
  W.value(true);
  W.null();
  W.beginObject();
  W.member("pi", 3.5);
  W.endObject();
  W.endArray();
  W.endObject();

  JsonValue V;
  std::string Error;
  ASSERT_TRUE(parseJson(Out, V, &Error)) << Error << "\n" << Out;
  EXPECT_EQ(V.get("plain")->Str, "abc");
  EXPECT_EQ(V.get("quoted")->Str, "say \"hi\"\n\ttab\\slash");
  EXPECT_EQ(V.get("ctrl")->Str, std::string("\x01\x1f", 2));
  const JsonValue *Arr = V.get("nested");
  ASSERT_NE(Arr, nullptr);
  ASSERT_EQ(Arr->Arr.size(), 5u);
  EXPECT_EQ(Arr->Arr[0].Num, 42.0);
  EXPECT_EQ(Arr->Arr[1].Num, -7.0);
  EXPECT_TRUE(Arr->Arr[2].B);
  EXPECT_EQ(Arr->Arr[3].K, JsonValue::Kind::Null);
  EXPECT_EQ(Arr->Arr[4].get("pi")->Num, 3.5);
}

TEST(Json, ParserRejectsMalformedInput) {
  JsonValue V;
  EXPECT_FALSE(parseJson("", V));
  EXPECT_FALSE(parseJson("{", V));
  EXPECT_FALSE(parseJson("{\"a\":1,}", V));
  EXPECT_FALSE(parseJson("[1 2]", V));
  EXPECT_FALSE(parseJson("{\"a\":1} trailing", V));
  EXPECT_FALSE(parseJson("\"unterminated", V));
  EXPECT_FALSE(parseJson("01", V));
  EXPECT_TRUE(parseJson("{\"a\": [1, 2, {\"b\": null}]}", V));
}

TEST(Json, ParserDecodesUnicodeEscapes) {
  JsonValue V;
  ASSERT_TRUE(parseJson("\"a\\u0041\\u00e9\\u20ac\"", V));
  EXPECT_EQ(V.Str, "aA\xc3\xa9\xe2\x82\xac"); // A, é, €
}

TEST(Json, DotPathLookup) {
  JsonValue V;
  ASSERT_TRUE(parseJson("{\"run\":{\"faults\":{\"text\":5}}}", V));
  const JsonValue *N = V.at("run.faults.text");
  ASSERT_NE(N, nullptr);
  EXPECT_EQ(N->Num, 5.0);
  EXPECT_EQ(V.at("run.missing"), nullptr);
}

//===----------------------------------------------------------------------===//
// Histogram bucket math.
//===----------------------------------------------------------------------===//

TEST(Histogram, BucketBoundaries) {
  // bucketOf(V) = bit_width(V): 0 -> 0, [2^(B-1), 2^B - 1] -> B.
  EXPECT_EQ(Histogram::bucketOf(0), 0u);
  EXPECT_EQ(Histogram::bucketOf(1), 1u);
  EXPECT_EQ(Histogram::bucketOf(2), 2u);
  EXPECT_EQ(Histogram::bucketOf(3), 2u);
  EXPECT_EQ(Histogram::bucketOf(4), 3u);
  EXPECT_EQ(Histogram::bucketOf(7), 3u);
  EXPECT_EQ(Histogram::bucketOf(8), 4u);
  EXPECT_EQ(Histogram::bucketOf(~uint64_t(0)), Histogram::NumBuckets - 1);

  // Every bucket's stated [lo, hi] range maps back to that bucket, and
  // consecutive ranges tile the uint64 domain without gaps or overlap.
  EXPECT_EQ(Histogram::bucketLo(0), 0u);
  EXPECT_EQ(Histogram::bucketHi(0), 0u);
  for (size_t B = 1; B < Histogram::NumBuckets; ++B) {
    EXPECT_EQ(Histogram::bucketOf(Histogram::bucketLo(B)), B) << B;
    EXPECT_EQ(Histogram::bucketOf(Histogram::bucketHi(B)), B) << B;
    EXPECT_EQ(Histogram::bucketLo(B), Histogram::bucketHi(B - 1) + 1) << B;
  }
  EXPECT_EQ(Histogram::bucketHi(Histogram::NumBuckets - 1), ~uint64_t(0));
}

TEST(Histogram, RecordPlacesBoundaryValues) {
  Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u); // empty-histogram convention
  EXPECT_EQ(H.max(), 0u);

  for (uint64_t V : {0ull, 1ull, 2ull, 3ull, 4ull, 255ull, 256ull})
    H.record(V);
  EXPECT_EQ(H.count(), 7u);
  EXPECT_EQ(H.sum(), 0u + 1 + 2 + 3 + 4 + 255 + 256);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 256u);
  EXPECT_EQ(H.bucketCount(0), 1u); // 0
  EXPECT_EQ(H.bucketCount(1), 1u); // 1
  EXPECT_EQ(H.bucketCount(2), 2u); // 2, 3
  EXPECT_EQ(H.bucketCount(3), 1u); // 4
  EXPECT_EQ(H.bucketCount(8), 1u); // 255 = 2^8 - 1
  EXPECT_EQ(H.bucketCount(9), 1u); // 256 = 2^8

  uint64_t Total = 0;
  for (size_t B = 0; B < Histogram::NumBuckets; ++B)
    Total += H.bucketCount(B);
  EXPECT_EQ(Total, H.count());
}

//===----------------------------------------------------------------------===//
// Counters: per-thread shard merge.
//===----------------------------------------------------------------------===//

TEST(Counter, MergesShardsAcrossThreads) {
  Counter C;
  constexpr int NumThreads = 8;
  constexpr int PerThread = 20000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&C] {
      for (int I = 0; I < PerThread; ++I)
        C.add(3);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(C.value(), uint64_t(NumThreads) * PerThread * 3);
}

TEST(Counter, RegistryMacroFromManyThreads) {
  const char *Name = "obs.test.macro_counter";
  ASSERT_FALSE(MetricsRegistry::global().has(Name));
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([] {
      for (int I = 0; I < 1000; ++I)
        NIMG_COUNTER_ADD("obs.test.macro_counter", 2);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(MetricsRegistry::global().counter(Name).value(), 4u * 1000 * 2);
}

TEST(Gauge, SetAndAdd) {
  Gauge G;
  G.set(10);
  G.add(-3);
  EXPECT_EQ(G.value(), 7);
  G.set(-5);
  EXPECT_EQ(G.value(), -5);
}

TEST(MetricsRegistry, StableReferencesAndLookup) {
  MetricsRegistry &R = MetricsRegistry::global();
  Counter &A = R.counter("obs.test.stable");
  Counter &B = R.counter("obs.test.stable");
  EXPECT_EQ(&A, &B);
  EXPECT_TRUE(R.has("obs.test.stable"));
  EXPECT_FALSE(R.has("obs.test.never_created"));
}

TEST(MetricsRegistry, JsonSnapshotParsesBack) {
  MetricsRegistry &R = MetricsRegistry::global();
  R.counter("obs.test.json_counter").add(11);
  R.gauge("obs.test.json_gauge").set(-4);
  Histogram &H = R.histogram("obs.test.json_hist");
  H.record(1);
  H.record(100);

  std::string Out;
  JsonWriter W(Out);
  R.writeJson(W);
  JsonValue V;
  std::string Error;
  ASSERT_TRUE(parseJson(Out, V, &Error)) << Error;
  EXPECT_EQ(V.at("counters.obs\\.test\\.json_counter"), nullptr)
      << "dots in metric names are plain object keys, not paths";
  EXPECT_EQ(V.get("counters")->get("obs.test.json_counter")->Num, 11.0);
  EXPECT_EQ(V.get("gauges")->get("obs.test.json_gauge")->Num, -4.0);
  const JsonValue *Hist = V.get("histograms")->get("obs.test.json_hist");
  ASSERT_NE(Hist, nullptr);
  EXPECT_EQ(Hist->get("count")->Num, 2.0);
  EXPECT_EQ(Hist->get("sum")->Num, 101.0);
  // Sparse [lo, hi, count] triples sum to the total count.
  double Total = 0;
  for (const JsonValue &Triple : Hist->get("buckets")->Arr) {
    ASSERT_EQ(Triple.Arr.size(), 3u);
    EXPECT_LE(Triple.Arr[0].Num, Triple.Arr[1].Num);
    Total += Triple.Arr[2].Num;
  }
  EXPECT_EQ(Total, 2.0);

  std::string Text = R.toText();
  EXPECT_NE(Text.find("obs.test.json_counter"), std::string::npos);
  EXPECT_NE(Text.find("obs.test.json_hist"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Span tracer: the emitted JSON is actually the Chrome trace-event format.
//===----------------------------------------------------------------------===//

namespace {

/// Enables the global tracer for one test and restores the prior state.
struct TracerScope {
  TracerScope() {
    SpanTracer::global().clear();
    SpanTracer::global().setEnabled(true);
  }
  ~TracerScope() {
    SpanTracer::global().setEnabled(false);
    SpanTracer::global().clear();
  }
};

} // namespace

TEST(SpanTracer, ChromeTraceJsonParsesBack) {
  TracerScope Scope;
  {
    NIMG_SPAN_NAMED(Outer, "pipeline", "outer");
    NIMG_SPAN_ARG(Outer, "key", "value with \"quotes\"");
    { NIMG_SPAN("build", "inner"); }
  }
  SpanTracer::global().instant("marker", "pipeline");

  std::string Json = SpanTracer::global().toChromeJson();
  JsonValue V;
  std::string Error;
  ASSERT_TRUE(parseJson(Json, V, &Error)) << Error << "\n" << Json;

  EXPECT_EQ(V.get("displayTimeUnit")->Str, "ms");
  const JsonValue *Events = V.get("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->K, JsonValue::Kind::Array);
  ASSERT_EQ(Events->Arr.size(), 3u);
  for (const JsonValue &E : Events->Arr) {
    // Complete events require exactly these fields to load in Perfetto.
    EXPECT_EQ(E.get("ph")->Str, "X");
    ASSERT_NE(E.get("name"), nullptr);
    ASSERT_NE(E.get("cat"), nullptr);
    ASSERT_NE(E.get("ts"), nullptr);
    ASSERT_NE(E.get("dur"), nullptr);
    ASSERT_NE(E.get("pid"), nullptr);
    ASSERT_NE(E.get("tid"), nullptr);
    EXPECT_GE(E.get("dur")->Num, 0.0);
  }
  // Inner closed before outer, so it is recorded first.
  EXPECT_EQ(Events->Arr[0].get("name")->Str, "inner");
  EXPECT_EQ(Events->Arr[1].get("name")->Str, "outer");
  EXPECT_EQ(Events->Arr[1].get("args")->get("key")->Str,
            "value with \"quotes\"");
  EXPECT_EQ(Events->Arr[2].get("name")->Str, "marker");
  EXPECT_EQ(Events->Arr[2].get("dur")->Num, 0.0);
  // Nesting: outer strictly contains inner on the timeline.
  EXPECT_LE(Events->Arr[1].get("ts")->Num, Events->Arr[0].get("ts")->Num);
  EXPECT_GE(Events->Arr[1].get("ts")->Num + Events->Arr[1].get("dur")->Num,
            Events->Arr[0].get("ts")->Num + Events->Arr[0].get("dur")->Num);
}

TEST(SpanTracer, DisabledTracerRecordsNothing) {
  SpanTracer::global().clear();
  ASSERT_FALSE(SpanTracer::global().enabled());
  {
    NIMG_SPAN("pipeline", "ignored");
    SpanTracer::global().instant("ignored", "pipeline");
  }
  EXPECT_EQ(SpanTracer::global().eventCount(), 0u);
}

//===----------------------------------------------------------------------===//
// Startup report.
//===----------------------------------------------------------------------===//

namespace {

const char *kReportWorkload = R"(
class Main {
  static int main() {
    int[] data = new int[64];
    for (int i = 0; i < data.length; i = i + 1) { data[i] = i * 3; }
    int sum = 0;
    for (int i = 0; i < data.length; i = i + 1) { sum = sum + data[i]; }
    Sys.print("sum " + sum);
    return sum;
  }
}
)";

struct ReportEnv {
  Program P;
  ReportEnv() {
    std::vector<std::string> Errors;
    EXPECT_TRUE(compileSources({kReportWorkload}, P, Errors));
    for (auto &E : Errors)
      ADD_FAILURE() << E;
  }
};

double numAt(const JsonValue &V, const char *Path) {
  const JsonValue *N = V.at(Path);
  EXPECT_NE(N, nullptr) << Path;
  return N ? N->Num : -1.0;
}

} // namespace

TEST(StartupReport, FaultCountsMatchTheRunExactly) {
  ReportEnv E;
  BuildConfig Cfg;
  NativeImage Img = buildNativeImage(E.P, Cfg);
  ASSERT_FALSE(Img.Built.Failed);
  RunConfig Run;
  RunStats S = runImage(Img, Run);
  ASSERT_FALSE(S.Trapped) << S.TrapMessage;

  StartupReport Report;
  Report.Target = "report-workload";
  Report.Command = "run";
  Report.setRun(S);
  Report.setImage(Img);

  JsonValue V;
  std::string Error;
  ASSERT_TRUE(parseJson(Report.toJson(), V, &Error)) << Error;

  // The acceptance contract: the report's per-section fault counts equal
  // the run's PagingSim counts exactly (RunStats copies them verbatim).
  EXPECT_EQ(uint64_t(numAt(V, "run.text_faults")), S.TextFaults);
  EXPECT_EQ(uint64_t(numAt(V, "run.heap_faults")), S.HeapFaults);
  EXPECT_EQ(uint64_t(numAt(V, "run.total_faults")),
            S.TextFaults + S.HeapFaults);
  EXPECT_EQ(uint64_t(numAt(V, "run.prefetched_pages")), S.PrefetchedPages);
  EXPECT_EQ(uint64_t(numAt(V, "run.instructions")), S.Instructions);

  // Fig. 6 page maps: one char per page, '#' count == the fault count
  // (every major fault marks exactly one page Faulted).
  const JsonValue *TextMap = V.at("run.text_page_map");
  ASSERT_NE(TextMap, nullptr);
  EXPECT_EQ(TextMap->Str.size(), S.TextPages.size());
  size_t Hashes = 0;
  for (char C : TextMap->Str) {
    EXPECT_TRUE(C == '#' || C == '+' || C == '.') << C;
    Hashes += C == '#';
  }
  EXPECT_EQ(Hashes, S.TextFaults);

  EXPECT_EQ(uint64_t(numAt(V, "image.num_cus")), Img.Code.CUs.size());
  EXPECT_EQ(uint64_t(numAt(V, "image.text_size")), Img.Layout.TextSize);
  EXPECT_EQ(V.at("profile_diag.degraded")->B, false);
  EXPECT_EQ(V.get("schema")->Str, "nimg-startup-report");
}

TEST(StartupReport, CsvRoundTripCarriesTheSameCounts) {
  ReportEnv E;
  BuildConfig Cfg;
  NativeImage Img = buildNativeImage(E.P, Cfg);
  RunConfig Run;
  RunStats S = runImage(Img, Run);

  StartupReport Report;
  Report.Command = "run";
  Report.setRun(S);
  Report.setImage(Img);
  std::string Csv = Report.toCsv();

  EXPECT_NE(Csv.find("section,key,value\n"), std::string::npos);
  EXPECT_NE(Csv.find("run,text_faults," + std::to_string(S.TextFaults) +
                     "\n"),
            std::string::npos);
  EXPECT_NE(Csv.find("run,heap_faults," + std::to_string(S.HeapFaults) +
                     "\n"),
            std::string::npos);
  EXPECT_NE(Csv.find("image,num_cus," +
                     std::to_string(Img.Code.CUs.size()) + "\n"),
            std::string::npos);
}

TEST(StartupReport, ZeroSampleCaptureSectionIsValidJson) {
  // A sampled run can legitimately take zero samples (period longer than
  // the run, or every tick landing between frames). The capture section
  // must still be well-formed JSON with zero counts — including the
  // overhead ratio, whose denominator can be zero here.
  RunStats S;
  S.SamplePeriod = 2048;
  S.SamplesTaken = 0;
  S.SampleEventsSkipped = 0;
  S.SampleCoveragePermille = 0;
  S.TimeNs = 0;

  StartupReport Report;
  Report.Command = "profile";
  Report.setRun(S);

  JsonValue V;
  std::string Error;
  ASSERT_TRUE(parseJson(Report.toJson(), V, &Error)) << Error;
  EXPECT_EQ(V.at("capture.mode")->Str, "sampled");
  EXPECT_EQ(uint64_t(numAt(V, "capture.sample_period")), 2048u);
  EXPECT_EQ(uint64_t(numAt(V, "capture.samples_taken")), 0u);
  EXPECT_EQ(numAt(V, "capture.overhead_permille"), 0.0);

  // An instrumented run (period 0) must not emit the section at all.
  RunStats Instr;
  StartupReport Plain;
  Plain.Command = "run";
  Plain.setRun(Instr);
  ASSERT_TRUE(parseJson(Plain.toJson(), V, &Error)) << Error;
  EXPECT_EQ(V.at("capture"), nullptr);
}

TEST(StartupReport, DegradedBuildReportStaysValid) {
  ReportEnv E;
  // A garbage profile with a valid-looking header magic forces the
  // degradation policy (BadHeader -> default layout).
  ProfileReadReport RR;
  CodeProfile Bad = CodeProfile::fromCsv("#nimg-profile,zzz\n", &RR);
  ASSERT_FALSE(RR.usable());

  BuildConfig Cfg;
  Cfg.CodeOrder = CodeStrategy::CuOrder;
  Cfg.CodeProf = &Bad;
  NativeImage Img = buildNativeImage(E.P, Cfg);
  ASSERT_FALSE(Img.Built.Failed);
  ASSERT_TRUE(Img.ProfileDiag.degraded());

  StartupReport Report;
  Report.Command = "build";
  Report.setImage(Img);
  SalvageStats Salv;
  Salv.WordsScanned = 10;
  Salv.WordsKept = 6;
  Salv.WordsDropped = 4;
  Salv.ThreadsTruncated = 1;
  Report.addSalvage("cu", Salv);
  Report.includeMetrics();

  JsonValue V;
  std::string Error;
  ASSERT_TRUE(parseJson(Report.toJson(), V, &Error)) << Error;
  EXPECT_TRUE(V.at("profile_diag.degraded")->B);
  EXPECT_TRUE(V.at("profile_diag.code_profile_provided")->B);
  EXPECT_FALSE(V.at("profile_diag.code_profile_applied")->B);
  const JsonValue *Issues = V.at("profile_diag.issues");
  ASSERT_NE(Issues, nullptr);
  ASSERT_FALSE(Issues->Arr.empty());
  EXPECT_EQ(Issues->Arr[0].get("kind")->Str, "bad_header");
  const JsonValue *Sal = V.get("salvage");
  ASSERT_EQ(Sal->K, JsonValue::Kind::Array);
  EXPECT_EQ(Sal->Arr[0].get("phase")->Str, "cu");
  EXPECT_EQ(Sal->Arr[0].at("stats.words_dropped")->Num, 4.0);
  EXPECT_FALSE(Sal->Arr[0].at("stats.clean")->B);
  // Metrics section present and structurally sound.
  ASSERT_NE(V.get("metrics"), nullptr);
  ASSERT_NE(V.at("metrics.counters"), nullptr);
}

TEST(StartupReport, ProfileErrorSlugsAreStable) {
  EXPECT_STREQ(profileErrorSlug(ProfileError::ChecksumMismatch),
               "checksum_mismatch");
  EXPECT_STREQ(profileErrorSlug(ProfileError::LegacyFormat), "legacy_format");
  EXPECT_STREQ(profileErrorSlug(ProfileError::None), "none");
}
