//===- WorkloadsTest.cpp - AWFY and microservice workload tests -------------===//

#include "src/core/Builder.h"
#include "src/runtime/ExecEngine.h"
#include "src/workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace nimg;

namespace {

/// Builds a baseline image of the benchmark and runs it once, cold.
RunStats buildAndRun(const BenchmarkSpec &Spec, std::unique_ptr<Program> &P) {
  std::vector<std::string> Errors;
  P = compileBenchmark(Spec, Errors);
  EXPECT_TRUE(P) << Spec.Name;
  for (auto &E : Errors)
    ADD_FAILURE() << Spec.Name << ": " << E;
  if (!P)
    return {};
  BuildConfig Cfg;
  Cfg.Seed = 42;
  NativeImage Img = buildNativeImage(*P, Cfg);
  EXPECT_FALSE(Img.Built.Failed) << Spec.Name << ": "
                                 << Img.Built.FailureMessage;
  RunConfig RC;
  RC.StopAtFirstResponse = Spec.Microservice;
  return runImage(Img, RC);
}

} // namespace

class AwfyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AwfyTest, RunsAndProducesExpectedOutput) {
  std::unique_ptr<Program> P;
  RunStats S = buildAndRun(awfyBenchmark(GetParam()), P);
  ASSERT_FALSE(S.Trapped) << GetParam() << ": " << S.TrapMessage;
  EXPECT_FALSE(S.FuelExhausted) << GetParam();
  EXPECT_NE(S.Output.find(GetParam() + ":"), std::string::npos)
      << GetParam() << " output: " << S.Output;
  EXPECT_GT(S.TextFaults, 0u) << GetParam();
  EXPECT_GT(S.HeapFaults, 0u) << GetParam();
  // Runtime startup plus benchmark touch only part of the image.
  EXPECT_GT(S.StoredObjectsTotal, S.StoredObjectsTouched * 2) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Awfy, AwfyTest,
                         ::testing::ValuesIn(awfyBenchmarkNames()));

namespace {

int64_t expectedResult(const std::string &Name) {
  // Golden results, fixed by the deterministic algorithms; these guard
  // against semantic regressions in the frontend/interpreter/workloads.
  if (Name == "Permute")
    return 8660;
  if (Name == "Queens")
    return 1;
  if (Name == "Sieve")
    return 669;
  if (Name == "Storage")
    return 5461;
  if (Name == "Towers")
    return 8191;
  if (Name == "List")
    return 10;
  return -1;
}

} // namespace

TEST(AwfyGolden, KnownResults) {
  for (const std::string &Name :
       {"Permute", "Queens", "Sieve", "Storage", "Towers", "List"}) {
    std::unique_ptr<Program> P;
    RunStats S = buildAndRun(awfyBenchmark(Name), P);
    ASSERT_FALSE(S.Trapped) << Name << ": " << S.TrapMessage;
    std::string Want = Name + ": " + std::to_string(expectedResult(Name));
    EXPECT_NE(S.Output.find(Want), std::string::npos)
        << Name << " output: " << S.Output;
  }
}

TEST(AwfyGolden, RichardsSchedulerCounts) {
  std::unique_ptr<Program> P;
  RunStats S = buildAndRun(awfyBenchmark("Richards"), P);
  ASSERT_FALSE(S.Trapped) << S.TrapMessage;
  // queueCount * 100000 + holdCount; the classic counts for 1000
  // idle-task iterations are 2322 and 928.
  EXPECT_NE(S.Output.find("Richards: 232200928"), std::string::npos)
      << S.Output;
}

class MicroserviceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MicroserviceTest, RespondsToFirstRequest) {
  std::unique_ptr<Program> P;
  RunStats S = buildAndRun(microserviceBenchmark(GetParam()), P);
  ASSERT_FALSE(S.Trapped) << GetParam() << ": " << S.TrapMessage;
  EXPECT_TRUE(S.Responded) << GetParam();
  EXPECT_GT(S.TimeToFirstResponseNs, 0.0);
  EXPECT_GT(S.TextFaults, 0u);
  EXPECT_GT(S.HeapFaults, 0u);
}

INSTANTIATE_TEST_SUITE_P(Micro, MicroserviceTest,
                         ::testing::ValuesIn(microserviceNames()));

TEST(Microservice, HelloWorldBodyIsServed) {
  std::unique_ptr<Program> P;
  BenchmarkSpec Spec = microserviceBenchmark("micronaut");
  std::vector<std::string> Errors;
  P = compileBenchmark(Spec, Errors);
  ASSERT_TRUE(P);
  BuildConfig Cfg;
  NativeImage Img = buildNativeImage(*P, Cfg);
  RunConfig RC;
  RC.StopAtFirstResponse = false; // Run to completion instead of SIGKILL.
  RunStats S = runImage(Img, RC);
  ASSERT_FALSE(S.Trapped) << S.TrapMessage;
  EXPECT_TRUE(S.Responded);
  EXPECT_FALSE(S.FuelExhausted);
}

TEST(Microservice, FrameworksDifferInSize) {
  std::vector<size_t> HeapSizes;
  for (const std::string &Name : microserviceNames()) {
    std::unique_ptr<Program> P;
    BenchmarkSpec Spec = microserviceBenchmark(Name);
    std::vector<std::string> Errors;
    P = compileBenchmark(Spec, Errors);
    ASSERT_TRUE(P) << Name;
    BuildConfig Cfg;
    NativeImage Img = buildNativeImage(*P, Cfg);
    HeapSizes.push_back(size_t(Img.Layout.HeapSize));
    EXPECT_GT(Img.Snapshot.numStored(), 500u) << Name;
  }
  // spring > micronaut > quarkus in heap-snapshot size.
  EXPECT_GT(HeapSizes[2], HeapSizes[0]);
  EXPECT_GT(HeapSizes[0], HeapSizes[1]);
}
