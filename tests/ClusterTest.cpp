//===- ClusterTest.cpp - Call-graph cluster ordering tests -------------------===//
//
// Properties of the cluster code orderer: the emitted profile is a
// permutation of the CU set seen in the trace, hot caller/callee pairs
// are packed together with the caller first, the page budget caps
// cluster growth, and degenerate inputs (no transitions, wrong trace
// mode) fall back to plain cu ordering with a documented diagnostic.
//
//===----------------------------------------------------------------------===//

#include "src/core/Builder.h"
#include "src/image/ImageFile.h"
#include "src/ir/IrBuilder.h"
#include "src/lang/Compile.h"
#include "src/ordering/ClusterLayout.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace nimg;

namespace {

/// Program with simple static methods plus a CompiledProgram with one CU
/// per method, for replaying synthetic cu-mode captures.
struct Fixture {
  Program P;
  ReachabilityResult Reach;
  CompiledProgram CP;
  MethodId A, B, X;

  Fixture() {
    ClassId C = P.addClass("T");
    A = add(C, "aa");
    B = add(C, "bb");
    X = add(C, "xx");
    MethodId Main = P.addMethod(C, "mainX", {}, P.intType(), true);
    IrBuilder Bld(P, Main);
    uint16_t R = Bld.constInt(0);
    for (MethodId M : {A, B, X})
      R = Bld.binop(Opcode::Add, R, Bld.callStatic(M, {}));
    Bld.ret(R);
    P.MainMethod = Main;
    Reach = analyzeReachability(P);
    InlinerConfig Cfg;
    Cfg.TrivialSize = 0; // no inlining: one CU per method
    Cfg.SmallSize = 0;
    CP = buildCompilationUnits(P, Reach, Cfg, false);
  }

  MethodId add(ClassId C, const char *Name) {
    MethodId M = P.addMethod(C, Name, {}, P.intType(), true);
    IrBuilder Bld(P, M);
    Bld.ret(Bld.constInt(1));
    return M;
  }

  TraceCapture capture(std::initializer_list<MethodId> Enters) {
    TraceCapture Cap;
    Cap.Options.Mode = TraceMode::CuOrder;
    Cap.Threads.resize(1);
    for (MethodId M : Enters)
      Cap.Threads[0].Words.push_back(tracerec::makeCuEnter(M));
    return Cap;
  }
};

const char *kWorkload = R"(
class Worker {
  static int step(int x) { return x * 3 + 1; }
  static int spin(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) { acc = acc + step(i); }
    return acc;
  }
}
class Other {
  static int twist(int x) { return x - 7; }
}
class Main {
  static int main() {
    int a = Worker.spin(40);
    int b = Other.twist(a);
    Sys.print("" + (a + b));
    return 0;
  }
}
)";

} // namespace

TEST(ClusterOrder, HotCalleePrecedesLaterEdgesCallerFirst) {
  Fixture F;
  // Transitions: A->X(1), X->B(1), B->A(2), A->B(1). The hottest edge
  // B->A merges first with the caller in front, so the layout starts
  // B, A even though A was seen first.
  TraceCapture Cap = F.capture({F.A, F.X, F.B, F.A, F.B, F.A});
  std::vector<ProfileIssue> Issues;
  ClusterStats Stats;
  CodeProfile Prof = analyzeClusterOrder(F.P, Cap, F.CP, ClusterOptions(),
                                         nullptr, &Issues, &Stats);
  ASSERT_EQ(Prof.Sigs.size(), 3u);
  EXPECT_EQ(Prof.Sigs[0], "T.bb()");
  EXPECT_EQ(Prof.Sigs[1], "T.aa()");
  EXPECT_EQ(Prof.Sigs[2], "T.xx()");
  EXPECT_TRUE(Issues.empty());
  EXPECT_FALSE(Stats.FellBack);
  EXPECT_EQ(Stats.Nodes, 3u);
  EXPECT_EQ(Stats.Edges, 4u);
  EXPECT_EQ(Prof.Header.Mode, TraceMode::CuOrder);
}

TEST(ClusterOrder, RepeatedAnalysisIsByteIdentical) {
  Fixture F;
  TraceCapture Cap = F.capture({F.A, F.X, F.B, F.A, F.B, F.A, F.X, F.B});
  CodeProfile First = analyzeClusterOrder(F.P, Cap, F.CP);
  CodeProfile Second = analyzeClusterOrder(F.P, Cap, F.CP);
  EXPECT_EQ(First.toCsv(), Second.toCsv());
}

TEST(ClusterOrder, EmptyTransitionGraphFallsBackToCuOrdering) {
  Fixture F;
  // A single distinct CU produces no transitions (self-edges dropped).
  TraceCapture Cap = F.capture({F.B, F.B, F.B});
  std::vector<ProfileIssue> Issues;
  ClusterStats Stats;
  CodeProfile Prof = analyzeClusterOrder(F.P, Cap, F.CP, ClusterOptions(),
                                         nullptr, &Issues, &Stats);
  ASSERT_EQ(Prof.Sigs.size(), 1u);
  EXPECT_EQ(Prof.Sigs[0], "T.bb()"); // first-execution order, like cu
  EXPECT_TRUE(Stats.FellBack);
  ASSERT_EQ(Issues.size(), 1u);
  EXPECT_EQ(Issues[0].Kind, ProfileError::EmptyTransitionGraph);
  EXPECT_STREQ(profileErrorSlug(Issues[0].Kind), "empty_transition_graph");
}

TEST(ClusterOrder, WrongTraceModeYieldsEmptyFallback) {
  Fixture F;
  TraceCapture Cap = F.capture({F.A, F.B});
  Cap.Options.Mode = TraceMode::HeapOrder;
  std::vector<ProfileIssue> Issues;
  SalvageStats Salvage;
  ClusterStats Stats;
  CodeProfile Prof = analyzeClusterOrder(F.P, Cap, F.CP, ClusterOptions(),
                                         &Salvage, &Issues, &Stats);
  EXPECT_TRUE(Prof.Sigs.empty());
  EXPECT_TRUE(Salvage.ModeMismatch);
  EXPECT_TRUE(Stats.FellBack);
  ASSERT_EQ(Issues.size(), 1u);
  EXPECT_EQ(Issues[0].Kind, ProfileError::EmptyTransitionGraph);
}

TEST(ClusterOrder, PageBudgetCapsClusterGrowth) {
  // Hand-built graph and CU sizes: three 100-byte CUs in a chain.
  CuTransitionGraph G;
  G.FirstSeen = {0, 1, 2};
  G.Edges.push_back({0, 1, 5});
  G.Edges.push_back({1, 2, 3});
  CompiledProgram CP;
  CP.CUs.resize(3);
  CP.CuOfMethod = {0, 1, 2};
  for (int32_t I = 0; I < 3; ++I) {
    CP.CUs[size_t(I)].Root = I;
    CP.CUs[size_t(I)].CodeSize = 100;
  }

  // Budget below any pair: every merge rejected, layout == first-seen.
  ClusterOptions Tight;
  Tight.PageBudgetBytes = 150;
  ClusterStats TS;
  std::vector<MethodId> Order = clusterLayout(G, CP, Tight, &TS);
  EXPECT_EQ(Order, (std::vector<MethodId>{0, 1, 2}));
  EXPECT_EQ(TS.Merges, 0u);
  EXPECT_EQ(TS.BudgetRejections, 2u);
  EXPECT_EQ(TS.Clusters, 3u);

  // Budget for one pair: the hotter edge merges, the second is rejected.
  ClusterOptions Mid;
  Mid.PageBudgetBytes = 250;
  ClusterStats MS;
  Order = clusterLayout(G, CP, Mid, &MS);
  EXPECT_EQ(Order, (std::vector<MethodId>{0, 1, 2}));
  EXPECT_EQ(MS.Merges, 1u);
  EXPECT_EQ(MS.BudgetRejections, 1u);
  EXPECT_EQ(MS.Clusters, 2u);

  // Unlimited: the whole chain becomes one cluster.
  ClusterOptions Open;
  Open.PageBudgetBytes = 0;
  ClusterStats OS;
  Order = clusterLayout(G, CP, Open, &OS);
  EXPECT_EQ(Order, (std::vector<MethodId>{0, 1, 2}));
  EXPECT_EQ(OS.Merges, 2u);
  EXPECT_EQ(OS.BudgetRejections, 0u);
  EXPECT_EQ(OS.Clusters, 1u);
}

TEST(ClusterOrder, ProfileIsPermutationOfCuProfile) {
  // End-to-end: collectProfiles derives the cluster profile from the same
  // cu-mode capture as the cu profile; same CU set, no drops, no dups.
  Program P;
  std::vector<std::string> Errors;
  ASSERT_TRUE(compileSources({kWorkload}, P, Errors));
  BuildConfig Cfg;
  Cfg.Seed = 1001;
  CollectedProfiles Prof = collectProfiles(P, Cfg, RunConfig());
  ASSERT_FALSE(Prof.Cu.Sigs.empty());
  ASSERT_EQ(Prof.Cluster.Sigs.size(), Prof.Cu.Sigs.size());

  std::vector<std::string> Cu = Prof.Cu.Sigs;
  std::vector<std::string> Cluster = Prof.Cluster.Sigs;
  std::sort(Cu.begin(), Cu.end());
  std::sort(Cluster.begin(), Cluster.end());
  EXPECT_EQ(Cu, Cluster);
  EXPECT_TRUE(std::adjacent_find(Cluster.begin(), Cluster.end()) ==
              Cluster.end());

  // The derived profile builds and applies like any other code profile.
  Prof.Cluster.Header.Fingerprint = programFingerprint(P);
  BuildConfig Opt;
  Opt.Seed = 2;
  Opt.CodeOrder = CodeStrategy::Cluster;
  Opt.CodeProf = &Prof.Cluster;
  NativeImage Img = buildNativeImage(P, Opt);
  ASSERT_FALSE(Img.Built.Failed) << Img.Built.FailureMessage;
  EXPECT_TRUE(Img.ProfileDiag.CodeProfileApplied);
}
