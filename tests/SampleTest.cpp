//===- SampleTest.cpp - Sampling profiler mode tests -------------------------===//
//
// The sampled capture pipeline end to end: deterministic model-clock
// sampling with the novelty buffer, rank reconstruction at cu and method
// granularity, the sampled v2 header cells (and the instrumented header
// staying byte-identical), prefix salvage of truncated sampled payloads,
// the aggregator's sampled gates (coverage floor, implausible period,
// expected mode), and the sampled collectProfiles flow with its
// documented degradations. This binary carries the "sample" ctest label.
//
//===----------------------------------------------------------------------===//

#include "src/core/Builder.h"
#include "src/image/ImageFile.h"
#include "src/ir/IrBuilder.h"
#include "src/lang/Compile.h"
#include "src/profiling/Aggregate.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace nimg;

namespace {

/// Two trivial static methods for record-level tests (each is its own CU
/// root when replayed through synthetic captures).
struct Fixture {
  Program P;
  MethodId A, B;

  Fixture() {
    ClassId C = P.addClass("T");
    A = add(C, "aa");
    B = add(C, "bb");
  }

  MethodId add(ClassId C, const char *Name) {
    MethodId M = P.addMethod(C, Name, {}, P.intType(), true);
    IrBuilder Bld(P, M);
    Bld.ret(Bld.constInt(1));
    return M;
  }

  TraceCapture capture(std::initializer_list<std::pair<MethodId, MethodId>>
                           Samples,
                       uint64_t Period = 2048) {
    TraceCapture Cap;
    Cap.Options.Mode = TraceMode::Sampled;
    Cap.Options.SamplePeriod = Period;
    Cap.Threads.resize(1);
    for (const auto &S : Samples)
      Cap.Threads[0].Words.push_back(tracerec::makeSample(S.first, S.second));
    return Cap;
  }
};

const char *kWorkload = R"(
class Worker {
  static int step(int x) { return x * 3 + 1; }
  static int spin(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) { acc = acc + step(i); }
    return acc;
  }
}
class Other {
  static int twist(int x) { return x - 7; }
}
class Main {
  static int main() {
    int a = Worker.spin(4000);
    int b = Other.twist(a);
    Sys.print("" + (a + b));
    return 0;
  }
}
)";

/// A sampled member with chosen header stamps, round-tripped through the
/// CSV interchange like a file off disk.
MemberProfile makeSampledMember(std::string Name,
                                std::vector<std::string> Sigs,
                                uint64_t Period = 2048, uint32_t Cov = 800,
                                uint64_t Gen = 0,
                                TraceMode Mode = TraceMode::CuOrder) {
  CodeProfile P;
  P.Header.Mode = Mode;
  P.Header.Capture = CaptureKind::Sampled;
  P.Header.SamplePeriod = Period;
  P.Header.CoveragePermille = Cov;
  P.Header.Generation = Gen;
  P.Sigs = std::move(Sigs);
  return loadMemberProfile(std::move(Name), P.toCsv());
}

const MergeMemberReport *reportFor(const MergeManifest &M,
                                   const std::string &Name) {
  for (const MergeMemberReport &R : M.Members)
    if (R.Name == Name)
      return &R;
  return nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// The sampled run: model-clock ticks, novelty buffer, coverage estimate.
//===----------------------------------------------------------------------===//

TEST(SampledRun, TakesPeriodicSamplesOnUninstrumentedImage) {
  Program P;
  std::vector<std::string> Errors;
  ASSERT_TRUE(compileSources({kWorkload}, P, Errors));
  BuildConfig Cfg;
  Cfg.Seed = 1;
  NativeImage Img = buildNativeImage(P, Cfg); // no instrumentation
  ASSERT_FALSE(Img.Built.Failed);

  TraceOptions TOpts;
  TOpts.Mode = TraceMode::Sampled;
  TOpts.SamplePeriod = 512;
  RunConfig RC;
  RC.Trace = &TOpts;
  TraceCapture Cap;
  RunStats S = runImage(Img, RC, &Cap);
  EXPECT_GT(S.SamplesTaken, 0u);
  EXPECT_GT(S.SampleEventsSkipped, 0u);
  EXPECT_EQ(S.SamplePeriod, 512u);
  // Every record costs probe units; nothing else does in sampled mode.
  EXPECT_GT(S.ProbeUnits, 0u);
  EXPECT_EQ(S.ProbeUnits % S.SamplesTaken == 0 ||
                S.ProbeUnits / S.SamplesTaken >= 1,
            true);
  // The novelty buffer flushes first-entered roots at the next tick, so
  // nearly every entered root is sampled (only a post-final-tick tail can
  // be missing).
  EXPECT_GE(S.SampleCoveragePermille, 900u);
  EXPECT_LE(S.SampleCoveragePermille, 1000u);
  size_t Words = 0;
  for (const auto &T : Cap.Threads)
    Words += T.Words.size();
  EXPECT_EQ(Words, S.SamplesTaken);
}

TEST(SampledRun, DeterministicAcrossIdenticalRuns) {
  Program P;
  std::vector<std::string> Errors;
  ASSERT_TRUE(compileSources({kWorkload}, P, Errors));
  BuildConfig Cfg;
  Cfg.Seed = 1;
  NativeImage Img = buildNativeImage(P, Cfg);
  ASSERT_FALSE(Img.Built.Failed);

  auto Capture = [&](uint64_t Phase) {
    TraceOptions TOpts;
    TOpts.Mode = TraceMode::Sampled;
    TOpts.SamplePeriod = 512;
    TOpts.SamplePhase = Phase;
    RunConfig RC;
    RC.Trace = &TOpts;
    TraceCapture Cap;
    runImage(Img, RC, &Cap);
    return Cap;
  };
  TraceCapture First = Capture(0), Second = Capture(0);
  ASSERT_EQ(First.Threads.size(), Second.Threads.size());
  for (size_t T = 0; T < First.Threads.size(); ++T)
    EXPECT_EQ(First.Threads[T].Words, Second.Threads[T].Words);
}

TEST(SampledRun, CoarserPeriodTakesFewerTickSamples) {
  Program P;
  std::vector<std::string> Errors;
  ASSERT_TRUE(compileSources({kWorkload}, P, Errors));
  BuildConfig Cfg;
  Cfg.Seed = 1;
  NativeImage Img = buildNativeImage(P, Cfg);
  ASSERT_FALSE(Img.Built.Failed);

  auto Count = [&](uint64_t Period) {
    TraceOptions TOpts;
    TOpts.Mode = TraceMode::Sampled;
    TOpts.SamplePeriod = Period;
    RunConfig RC;
    RC.Trace = &TOpts;
    return runImage(Img, RC).SamplesTaken;
  };
  // Novelty records are period-independent, tick samples halve; the total
  // must drop strictly when the period quadruples.
  EXPECT_GT(Count(256), Count(1024));
}

//===----------------------------------------------------------------------===//
// Rank reconstruction from sample records.
//===----------------------------------------------------------------------===//

TEST(SampledAnalysis, CuRanksByEarliestSampleWithHitCounts) {
  Fixture F;
  TraceCapture Cap = F.capture({{F.B, F.B}, {F.A, F.A}, {F.B, F.B}});
  CodeProfile Prof = analyzeSampledCuOrder(F.P, Cap);
  ASSERT_EQ(Prof.Sigs.size(), 2u);
  EXPECT_EQ(Prof.Sigs[0], "T.bb()");
  EXPECT_EQ(Prof.Sigs[1], "T.aa()");
  ASSERT_EQ(Prof.Counts.size(), 2u);
  EXPECT_EQ(Prof.Counts[0], 2u);
  EXPECT_EQ(Prof.Counts[1], 1u);
  EXPECT_EQ(Prof.Header.Mode, TraceMode::CuOrder);
  EXPECT_EQ(Prof.Header.Capture, CaptureKind::Sampled);
  EXPECT_EQ(Prof.Header.SamplePeriod, 2048u);
}

TEST(SampledAnalysis, MethodGranularityUsesSampledMethodNotRoot) {
  Fixture F;
  // Method A sampled while inlined under root B.
  TraceCapture Cap = F.capture({{F.A, F.B}});
  CodeProfile Method = analyzeSampledMethodOrder(F.P, Cap);
  ASSERT_EQ(Method.Sigs.size(), 1u);
  EXPECT_EQ(Method.Sigs[0], "T.aa()");
  EXPECT_EQ(Method.Header.Mode, TraceMode::MethodOrder);
  CodeProfile Cu = analyzeSampledCuOrder(F.P, Cap);
  ASSERT_EQ(Cu.Sigs.size(), 1u);
  EXPECT_EQ(Cu.Sigs[0], "T.bb()");
}

//===----------------------------------------------------------------------===//
// The sampled v2 header cells.
//===----------------------------------------------------------------------===//

TEST(SampledCsv, CaptureCellsRoundTrip) {
  Fixture F;
  CodeProfile Prof =
      analyzeSampledCuOrder(F.P, F.capture({{F.A, F.A}}, /*Period=*/1024));
  Prof.Header.CoveragePermille = 640;
  std::string Csv = Prof.toCsv();
  EXPECT_NE(Csv.find(",sampled,1024\n"), std::string::npos);

  ProfileReadReport Read;
  CodeProfile Back = CodeProfile::fromCsv(Csv, &Read);
  EXPECT_EQ(Back.LoadError, ProfileError::None);
  EXPECT_EQ(Back.Header.Capture, CaptureKind::Sampled);
  EXPECT_EQ(Back.Header.SamplePeriod, 1024u);
  EXPECT_EQ(Back.Header.CoveragePermille, 640u);
  EXPECT_EQ(Back.Sigs, Prof.Sigs);
}

TEST(SampledCsv, InstrumentedHeaderStaysByteIdentical) {
  // The capture cells are emitted only for sampled profiles: an
  // instrumented header keeps its eight cells so pre-sampling readers
  // (and CRC-exact fleet tooling) see unchanged bytes.
  CodeProfile P;
  P.Header.Mode = TraceMode::CuOrder;
  P.Sigs = {"x"};
  std::string Csv = P.toCsv();
  std::string Header = Csv.substr(0, Csv.find('\n'));
  EXPECT_EQ(std::count(Header.begin(), Header.end(), ','), 7);
  EXPECT_EQ(Header.find("sampled"), std::string::npos);
}

TEST(SampledCsv, TruncatedSampledPayloadSalvagesToPrefix) {
  Fixture F;
  CodeProfile Prof = analyzeSampledCuOrder(
      F.P, F.capture({{F.A, F.A}, {F.B, F.B}}, /*Period=*/2048));
  std::string Csv = Prof.toCsv();
  // Cut the payload mid-way: CRC no longer matches, the final row is
  // gone, but the surviving prefix is intact.
  std::string Cut = Csv.substr(0, Csv.rfind("T.bb()"));
  ProfileReadReport Read;
  CodeProfile Back = CodeProfile::fromCsv(Cut, &Read);
  EXPECT_EQ(Back.LoadError, ProfileError::None);
  EXPECT_TRUE(Read.PrefixSalvaged);
  ASSERT_EQ(Back.Sigs.size(), 1u);
  EXPECT_EQ(Back.Sigs[0], "T.aa()");
}

TEST(SampledCsv, TruncatedInstrumentedPayloadStaysFatal) {
  // The prefix-salvage rule is sampled-only: an instrumented capture is a
  // complete record, so a checksum mismatch stays a fatal load error (the
  // aggregator's TruncateCsv quarantine guarantee depends on it).
  CodeProfile P;
  P.Header.Mode = TraceMode::CuOrder;
  P.Sigs = {"a", "b"};
  std::string Csv = P.toCsv();
  std::string Cut = Csv.substr(0, Csv.rfind('b'));
  ProfileReadReport Read;
  CodeProfile Back = CodeProfile::fromCsv(Cut, &Read);
  EXPECT_EQ(Back.LoadError, ProfileError::ChecksumMismatch);
  EXPECT_FALSE(Read.PrefixSalvaged);
}

//===----------------------------------------------------------------------===//
// Aggregation gates for sampled members.
//===----------------------------------------------------------------------===//

TEST(SampledMerge, ImplausiblePeriodIsQuarantined) {
  std::vector<MemberProfile> Members = {
      makeSampledMember("good", {"a", "b"}),
      makeSampledMember("absurd", {"a", "b"},
                        /*Period=*/TraceOptions::MaxSamplePeriod + 1)};
  MergeResult R = aggregateProfiles(Members);
  const MergeMemberReport *Rep = reportFor(R.Manifest, "absurd");
  ASSERT_NE(Rep, nullptr);
  EXPECT_EQ(Rep->Status, MergeMemberStatus::Quarantined);
  EXPECT_EQ(Rep->Reason, ProfileError::ImplausibleSamplePeriod);
  // Fail-open: the build still gets a usable profile.
  EXPECT_EQ(R.Manifest.Outcome, MergeOutcome::BestSingle);
  EXPECT_STREQ(profileErrorSlug(ProfileError::ImplausibleSamplePeriod),
               "implausible_sample_period");
}

TEST(SampledMerge, SampledCoverageGateIsTheLowFloor) {
  // 200 permille would fail the instrumented gate (500) but clears the
  // sampled floor (50): a sparse sampling votes weakly, it is not damage.
  std::vector<MemberProfile> Members = {
      makeSampledMember("sparse", {"a", "b"}, 2048, /*Cov=*/200),
      makeSampledMember("dense", {"b", "a"}, 2048, /*Cov=*/900)};
  MergeResult R = aggregateProfiles(Members);
  const MergeMemberReport *Rep = reportFor(R.Manifest, "sparse");
  ASSERT_NE(Rep, nullptr);
  EXPECT_NE(Rep->Status, MergeMemberStatus::Quarantined);
  EXPECT_EQ(R.Manifest.Outcome, MergeOutcome::Merged);

  // Below the floor the member carries no rank signal and is dropped.
  std::vector<MemberProfile> Floor = {
      makeSampledMember("dust", {"a", "b"}, 2048, /*Cov=*/10),
      makeSampledMember("dense", {"b", "a"}, 2048, /*Cov=*/900)};
  MergeResult R2 = aggregateProfiles(Floor);
  const MergeMemberReport *Dust = reportFor(R2.Manifest, "dust");
  ASSERT_NE(Dust, nullptr);
  EXPECT_EQ(Dust->Status, MergeMemberStatus::Quarantined);
  EXPECT_EQ(Dust->Reason, ProfileError::CoverageBelowGate);
}

TEST(SampledMerge, AllSampledMergeKeepsCaptureAndCoarsestPeriod) {
  std::vector<MemberProfile> Members = {
      makeSampledMember("m0", {"a", "b"}, /*Period=*/1024),
      makeSampledMember("m1", {"b", "a"}, /*Period=*/4096)};
  MergeResult R = aggregateProfiles(Members);
  ASSERT_EQ(R.Manifest.Outcome, MergeOutcome::Merged);
  EXPECT_EQ(R.Profile.Header.Capture, CaptureKind::Sampled);
  EXPECT_EQ(R.Profile.Header.SamplePeriod, 4096u);

  // One instrumented member makes the merged profile instrumented: it
  // already contributes exact ranks.
  CodeProfile Instr;
  Instr.Header.Mode = TraceMode::CuOrder;
  Instr.Sigs = {"a", "b"};
  std::vector<MemberProfile> Mixed = {
      makeSampledMember("m0", {"a", "b"}, 1024),
      loadMemberProfile("exact", Instr.toCsv())};
  MergeResult R2 = aggregateProfiles(Mixed);
  ASSERT_EQ(R2.Manifest.Outcome, MergeOutcome::Merged);
  EXPECT_EQ(R2.Profile.Header.Capture, CaptureKind::Instrumented);
}

TEST(SampledMerge, ExpectedModeAdmitsMethodGranularityMembers) {
  std::vector<MemberProfile> Members = {
      makeSampledMember("m0", {"a", "b"}, 2048, 800, 0,
                        TraceMode::MethodOrder),
      makeSampledMember("m1", {"b", "a"}, 2048, 800, 0,
                        TraceMode::MethodOrder)};
  // Default options expect cu granularity: method members are rejected.
  MergeResult Rejected = aggregateProfiles(Members);
  EXPECT_EQ(Rejected.Manifest.Outcome, MergeOutcome::Fallback);
  const MergeMemberReport *Rep = reportFor(Rejected.Manifest, "m0");
  ASSERT_NE(Rep, nullptr);
  EXPECT_EQ(Rep->Reason, ProfileError::ModeMismatch);

  MergeOptions Opts;
  Opts.ExpectedMode = TraceMode::MethodOrder;
  MergeResult R = aggregateProfiles(Members, Opts);
  ASSERT_EQ(R.Manifest.Outcome, MergeOutcome::Merged);
  EXPECT_EQ(R.Profile.Header.Mode, TraceMode::MethodOrder);
}

//===----------------------------------------------------------------------===//
// The sampled collectProfiles flow and its documented degradations.
//===----------------------------------------------------------------------===//

TEST(SampledPipeline, CollectProfilesSampledFeedsAllCodeStrategies) {
  Program P;
  std::vector<std::string> Errors;
  ASSERT_TRUE(compileSources({kWorkload}, P, Errors));
  BuildConfig Cfg;
  Cfg.Seed = 1001;
  Cfg.ProfileCapture = CaptureKind::Sampled;
  Cfg.SamplePeriod = 512;
  CollectedProfiles Prof = collectProfiles(P, Cfg, RunConfig());

  ASSERT_FALSE(Prof.Cu.Sigs.empty());
  EXPECT_EQ(Prof.Cu.Header.Capture, CaptureKind::Sampled);
  EXPECT_EQ(Prof.Cu.Header.SamplePeriod, 512u);
  ASSERT_FALSE(Prof.Method.Sigs.empty());
  EXPECT_EQ(Prof.Method.Header.Mode, TraceMode::MethodOrder);
  EXPECT_GT(Prof.CuRun.SamplesTaken, 0u);
  EXPECT_EQ(Prof.CuRun.SamplePeriod, 512u);

  // Samples carry no CU transitions: the cluster profile degrades to the
  // sampled cu order with a typed diagnostic; block splitting evidence is
  // typed-unavailable.
  EXPECT_EQ(Prof.Cluster.Sigs, Prof.Cu.Sigs);
  bool SawDegradation = false;
  for (const ProfileIssue &I : Prof.ClusterIssues)
    if (I.Kind == ProfileError::EmptyTransitionGraph)
      SawDegradation = true;
  EXPECT_TRUE(SawDegradation);
  EXPECT_EQ(Prof.Blocks.LoadError, ProfileError::InsufficientBlockProfile);

  // The sampled cu profile drives an optimizing build like any other.
  BuildConfig Opt;
  Opt.Seed = 2;
  Opt.CodeOrder = CodeStrategy::CuOrder;
  Opt.CodeProf = &Prof.Cu;
  NativeImage Img = buildNativeImage(P, Opt);
  ASSERT_FALSE(Img.Built.Failed);
  EXPECT_TRUE(Img.ProfileDiag.CodeProfileApplied);
}

TEST(SampledPipeline, ProfileSetStaggersPhasesDeterministically) {
  Program P;
  std::vector<std::string> Errors;
  ASSERT_TRUE(compileSources({kWorkload}, P, Errors));
  BuildConfig Cfg;
  Cfg.Seed = 1001;
  Cfg.ProfileCapture = CaptureKind::Sampled;
  Cfg.SamplePeriod = 512;
  std::vector<std::string> Names = {"i0", "i1", "i2", "i3"};
  std::vector<MemberProfile> First =
      collectProfileSet(P, Cfg, RunConfig(), Names);
  std::vector<MemberProfile> Second =
      collectProfileSet(P, Cfg, RunConfig(), Names);
  ASSERT_EQ(First.size(), 4u);
  for (size_t I = 0; I < First.size(); ++I) {
    EXPECT_EQ(First[I].Profile.Header.Capture, CaptureKind::Sampled);
    EXPECT_EQ(First[I].Profile.toCsv(), Second[I].Profile.toCsv());
  }
  // The staggered set merges into a usable sampled profile.
  MergeResult R = aggregateProfiles(First);
  EXPECT_TRUE(R.usable());
  EXPECT_EQ(R.Profile.Header.Capture, CaptureKind::Sampled);
}
