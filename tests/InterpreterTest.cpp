//===- InterpreterTest.cpp - End-to-end MiniJava execution tests -----------===//

#include "src/lang/Compile.h"
#include "src/runtime/Interpreter.h"

#include <gtest/gtest.h>

using namespace nimg;

namespace {

/// Compiles sources and runs Main.main() with build-time clinit semantics;
/// returns the result value.
struct RunResult {
  Value Result;
  std::string Output;
  uint64_t Instructions;
};

RunResult runProgram(const std::vector<std::string> &Sources) {
  auto P = std::make_unique<Program>();
  std::vector<std::string> Errors;
  bool Ok = compileSources(Sources, *P, Errors);
  EXPECT_TRUE(Ok);
  for (auto &E : Errors)
    ADD_FAILURE() << E;
  EXPECT_NE(P->MainMethod, -1) << "program has no Main.main()";
  auto H = std::make_unique<Heap>(*P);
  InterpConfig Cfg;
  Cfg.RunClinits = true;
  Interpreter I(*P, *H, Cfg);
  Value R = I.runToCompletion(P->MainMethod, {});
  return {R, I.output(), I.instructionsExecuted()};
}

int64_t runInt(const std::string &Source) {
  RunResult R = runProgram({Source});
  EXPECT_EQ(R.Result.Kind, ValueKind::Int);
  return R.Result.asInt();
}

double runDouble(const std::string &Source) {
  RunResult R = runProgram({Source});
  EXPECT_EQ(R.Result.Kind, ValueKind::Double);
  return R.Result.asDouble();
}

} // namespace

TEST(Interp, ArithmeticAndPrecedence) {
  EXPECT_EQ(runInt("class Main { static int main() {"
                   " return 2 + 3 * 4 - 10 / 2 % 3; } }"),
            2 + 3 * 4 - 10 / 2 % 3);
}

TEST(Interp, DoubleMath) {
  EXPECT_DOUBLE_EQ(runDouble("class Main { static double main() {"
                             " double x = 1.5; return x * 2.0 + 1; } }"),
                   4.0);
}

TEST(Interp, MixedIntDoublePromotion) {
  EXPECT_DOUBLE_EQ(runDouble("class Main { static double main() {"
                             " int i = 3; return i / 2.0; } }"),
                   1.5);
}

TEST(Interp, CastTruncates) {
  EXPECT_EQ(runInt("class Main { static int main() {"
                   " double d = 3.9; return (int) d; } }"),
            3);
}

TEST(Interp, BitwiseOps) {
  EXPECT_EQ(runInt("class Main { static int main() {"
                   " return ((12 & 10) | ((1 << 4) ^ 3)); } }"),
            (12 & 10) | ((1 << 4) ^ 3));
}

TEST(Interp, ShortCircuitAvoidsEvaluation) {
  // The right operand would trap (division by zero) if evaluated.
  EXPECT_EQ(runInt("class Main {\n"
                   " static boolean boom() { int x = 1 / 0; return true; }\n"
                   " static int main() {\n"
                   "  boolean b = false && boom();\n"
                   "  boolean c = true || boom();\n"
                   "  if (b) { return 1; } if (!c) { return 2; } return 3;\n"
                   " } }"),
            3);
}

TEST(Interp, WhileAndForLoops) {
  EXPECT_EQ(runInt("class Main { static int main() {\n"
                   " int s = 0;\n"
                   " for (int i = 0; i < 10; i = i + 1) { s = s + i; }\n"
                   " int j = 0; while (j < 5) { s = s + 100; j = j + 1; }\n"
                   " return s; } }"),
            45 + 500);
}

TEST(Interp, BreakContinue) {
  EXPECT_EQ(runInt("class Main { static int main() {\n"
                   " int s = 0;\n"
                   " for (int i = 0; i < 100; i = i + 1) {\n"
                   "  if (i == 7) { break; }\n"
                   "  if (i % 2 == 0) { continue; }\n"
                   "  s = s + i;\n"
                   " }\n"
                   " return s; } }"),
            1 + 3 + 5);
}

TEST(Interp, RecursionFibonacci) {
  EXPECT_EQ(runInt("class Main {\n"
                   " static int fib(int n) {\n"
                   "  if (n < 2) { return n; } return fib(n-1) + fib(n-2);\n"
                   " }\n"
                   " static int main() { return fib(15); } }"),
            610);
}

TEST(Interp, ObjectsFieldsAndConstructors) {
  EXPECT_EQ(runInt("class Point { int x; int y;\n"
                   "  Point(int x, int y) { this.x = x; this.y = y; }\n"
                   "  int sum() { return x + y; } }\n"
                   "class Main { static int main() {\n"
                   "  Point p = new Point(3, 4); return p.sum(); } }"),
            7);
}

TEST(Interp, InstanceFieldInitializersRun) {
  EXPECT_EQ(runInt("class A { int x = 41; int bump() { return x + 1; } }\n"
                   "class Main { static int main() {\n"
                   "  return new A().bump(); } }"),
            42);
}

TEST(Interp, InheritanceAndSuperCtor) {
  EXPECT_EQ(runInt("class Base { int b; Base(int b) { this.b = b; } }\n"
                   "class Derived extends Base { int d;\n"
                   "  Derived(int b, int d) { super(b); this.d = d; }\n"
                   "  int total() { return b + d; } }\n"
                   "class Main { static int main() {\n"
                   "  return new Derived(30, 12).total(); } }"),
            42);
}

TEST(Interp, VirtualDispatch) {
  EXPECT_EQ(runInt(
                "abstract class Animal { abstract int legs(); }\n"
                "class Dog extends Animal { int legs() { return 4; } }\n"
                "class Bird extends Animal { int legs() { return 2; } }\n"
                "class Main { static int main() {\n"
                "  Animal a = new Dog(); Animal b = new Bird();\n"
                "  return a.legs() * 10 + b.legs(); } }"),
            42);
}

TEST(Interp, OverrideCallsThroughBaseArray) {
  EXPECT_EQ(runInt("abstract class Op { abstract int apply(int x); }\n"
                   "class Inc extends Op { int apply(int x) { return x + 1; } }\n"
                   "class Dbl extends Op { int apply(int x) { return x * 2; } }\n"
                   "class Main { static int main() {\n"
                   "  Op[] ops = new Op[2];\n"
                   "  ops[0] = new Inc(); ops[1] = new Dbl();\n"
                   "  int v = 10;\n"
                   "  for (int i = 0; i < ops.length; i = i + 1) {"
                   "    v = ops[i].apply(v); }\n"
                   "  return v; } }"),
            22);
}

TEST(Interp, ArraysAndLength) {
  EXPECT_EQ(runInt("class Main { static int main() {\n"
                   "  int[] a = new int[10];\n"
                   "  for (int i = 0; i < a.length; i = i + 1) { a[i] = i * i; }\n"
                   "  return a[9] + a.length; } }"),
            91);
}

TEST(Interp, NestedArrays) {
  EXPECT_EQ(runInt("class Main { static int main() {\n"
                   "  int[][] m = new int[3][];\n"
                   "  for (int i = 0; i < 3; i = i + 1) {\n"
                   "    m[i] = new int[3];\n"
                   "    for (int j = 0; j < 3; j = j + 1) { m[i][j] = i * j; }\n"
                   "  }\n"
                   "  return m[2][2]; } }"),
            4);
}

TEST(Interp, StaticFieldsAndClinit) {
  EXPECT_EQ(runInt("class Counter { static int base = 40;\n"
                   "  static { base = base + 2; } }\n"
                   "class Main { static int main() { return Counter.base; } }"),
            42);
}

TEST(Interp, ClinitRunsOnceLazily) {
  EXPECT_EQ(runInt("class C { static int inits = 0; static int v = 1;\n"
                   "  static { inits = inits + 1; } }\n"
                   "class Main { static int main() {\n"
                   "  int a = C.v; int b = C.v; return C.inits; } }"),
            1);
}

TEST(Interp, ClinitDependencyChain) {
  // B's initializer reads A's static, forcing A's clinit mid-way.
  EXPECT_EQ(runInt("class A { static int x = 10; }\n"
                   "class B { static int y = A.x + 32; }\n"
                   "class Main { static int main() { return B.y; } }"),
            42);
}

TEST(Interp, SuperclassClinitRunsFirst) {
  EXPECT_EQ(runInt(
                "class Base { static int order = 1; }\n"
                "class Sub extends Base { static int v = Base.order * 42; }\n"
                "class Main { static int main() { return Sub.v; } }"),
            42);
}

TEST(Interp, StringsConcatAndBuiltins) {
  RunResult R = runProgram({"class Main { static void main() {\n"
                            "  String s = \"a\" + 1 + \"b\" + 2.5;\n"
                            "  Sys.print(s);\n"
                            "  Sys.printInt(Str.length(s));\n"
                            "} }"});
  EXPECT_EQ(R.Output, "a1b2.5\n6\n");
}

TEST(Interp, StringOps) {
  EXPECT_EQ(runInt("class Main { static int main() {\n"
                   "  String s = \"hello world\";\n"
                   "  String w = Str.substring(s, 6, 11);\n"
                   "  if (Str.equals(w, \"world\")) { return Str.charAt(w, 0); }\n"
                   "  return 0; } }"),
            int64_t('w'));
}

TEST(Interp, NullComparison) {
  EXPECT_EQ(runInt("class A { A next; }\n"
                   "class Main { static int main() {\n"
                   "  A a = new A();\n"
                   "  if (a.next == null) { return 1; } return 0; } }"),
            1);
}

TEST(Interp, MathNatives) {
  EXPECT_DOUBLE_EQ(runDouble("class Main { static double main() {\n"
                             "  return Sys.sqrt(16.0) + Sys.floor(1.9); } }"),
                   5.0);
}

TEST(Interp, TrapNullDeref) {
  Program P;
  std::vector<std::string> Errors;
  ASSERT_TRUE(compileSources({"class A { int x; }\n"
                              "class Main { static int main() {\n"
                              "  A a = null; return a.x; } }"},
                             P, Errors));
  Heap H(P);
  InterpConfig Cfg;
  Cfg.RunClinits = true;
  Interpreter I(P, H, Cfg);
  uint32_t Tid = I.spawnThread(P.MainMethod, {});
  while (!I.threadFinished(Tid))
    I.step(Tid, 1000);
  EXPECT_TRUE(I.threadTrapped(Tid));
  EXPECT_NE(I.trapMessage(Tid).find("null dereference"), std::string::npos);
}

TEST(Interp, TrapArrayBounds) {
  Program P;
  std::vector<std::string> Errors;
  ASSERT_TRUE(compileSources({"class Main { static int main() {\n"
                              "  int[] a = new int[2]; return a[5]; } }"},
                             P, Errors));
  Heap H(P);
  Interpreter I(P, H);
  I.markAllClinitsDone();
  uint32_t Tid = I.spawnThread(P.MainMethod, {});
  while (!I.threadFinished(Tid))
    I.step(Tid, 1000);
  EXPECT_TRUE(I.threadTrapped(Tid));
  EXPECT_NE(I.trapMessage(Tid).find("out of bounds"), std::string::npos);
}

TEST(Interp, TrapDivZero) {
  Program P;
  std::vector<std::string> Errors;
  ASSERT_TRUE(compileSources({"class Main { static int main() {\n"
                              "  int z = 0; return 5 / z; } }"},
                             P, Errors));
  Heap H(P);
  Interpreter I(P, H);
  I.markAllClinitsDone();
  uint32_t Tid = I.spawnThread(P.MainMethod, {});
  while (!I.threadFinished(Tid))
    I.step(Tid, 1000);
  EXPECT_TRUE(I.threadTrapped(Tid));
}

TEST(Interp, QuantumSteppingIsIncremental) {
  Program P;
  std::vector<std::string> Errors;
  ASSERT_TRUE(compileSources({"class Main { static int main() {\n"
                              "  int s = 0;\n"
                              "  for (int i = 0; i < 1000; i = i + 1) {"
                              "    s = s + 1; }\n"
                              "  return s; } }"},
                             P, Errors));
  Heap H(P);
  Interpreter I(P, H);
  I.markAllClinitsDone();
  uint32_t Tid = I.spawnThread(P.MainMethod, {});
  uint64_t Steps = 0;
  while (!I.threadFinished(Tid)) {
    uint64_t N = I.step(Tid, 7);
    EXPECT_LE(N, 7u);
    Steps += N;
  }
  EXPECT_GT(Steps, 1000u);
  EXPECT_EQ(I.threadResult(Tid).asInt(), 1000);
}

TEST(Interp, InternedStringsShareCells) {
  Program P;
  std::vector<std::string> Errors;
  ASSERT_TRUE(compileSources(
      {"class Main { static boolean main() {\n"
       "  String a = \"shared\"; String b = \"shared\";\n"
       "  return a == b; } }"}, // identity compare: interned literals
      P, Errors));
  Heap H(P);
  Interpreter I(P, H);
  I.markAllClinitsDone();
  Value R = I.runToCompletion(P.MainMethod, {});
  EXPECT_TRUE(R.asBool());
}

TEST(Interp, CastObjectRoundTrip) {
  EXPECT_EQ(runInt("class Box { int v; Box(int v) { this.v = v; } }\n"
                   "class Main { static int main() {\n"
                   "  Object o = new Box(42);\n"
                   "  Box b = (Box) o;\n"
                   "  return b.v; } }"),
            42);
}

TEST(Interp, ResultOfThreadRootMethod) {
  RunResult R = runProgram({"class Main { static int main() {\n"
                            "  return 123; } }"});
  EXPECT_EQ(R.Result.asInt(), 123);
  EXPECT_GT(R.Instructions, 0u);
}
