//===- AnalysesTest.cpp - Post-processing analysis tests ---------------------===//

#include "src/ir/IrBuilder.h"
#include "src/profiling/Analyses.h"

#include <gtest/gtest.h>

using namespace nimg;

namespace {

/// A program with two trivial static methods for record-level tests.
struct Fixture {
  Program P;
  MethodId A, B;

  Fixture() {
    ClassId C = P.addClass("T");
    A = P.addMethod(C, "aa", {}, P.intType(), true);
    {
      IrBuilder Bld(P, A);
      Bld.ret(Bld.constInt(1));
    }
    B = P.addMethod(C, "bb", {}, P.intType(), true);
    {
      IrBuilder Bld(P, B);
      Bld.ret(Bld.constInt(2));
    }
  }
};

} // namespace

TEST(Analyses, CuOrderDedupsKeepingFirst) {
  Fixture F;
  TraceCapture Cap;
  Cap.Options.Mode = TraceMode::CuOrder;
  Cap.Threads.resize(1);
  auto &W = Cap.Threads[0].Words;
  W.push_back(tracerec::makeCuEnter(F.B));
  W.push_back(tracerec::makeCuEnter(F.A));
  W.push_back(tracerec::makeCuEnter(F.B)); // duplicate
  CodeProfile Prof = analyzeCuOrder(F.P, Cap);
  ASSERT_EQ(Prof.Sigs.size(), 2u);
  EXPECT_EQ(Prof.Sigs[0], "T.bb()");
  EXPECT_EQ(Prof.Sigs[1], "T.aa()");
}

TEST(Analyses, ThreadsConcatenateInCreationOrder) {
  // Sec. 7.1: multi-threaded orderings concatenate per-thread traces in
  // thread-creation order and dedup.
  Fixture F;
  TraceCapture Cap;
  Cap.Options.Mode = TraceMode::CuOrder;
  Cap.Threads.resize(2);
  Cap.Threads[0].Words.push_back(tracerec::makeCuEnter(F.A));
  Cap.Threads[1].Words.push_back(tracerec::makeCuEnter(F.B));
  Cap.Threads[1].Words.push_back(tracerec::makeCuEnter(F.A)); // dup of t0
  CodeProfile Prof = analyzeCuOrder(F.P, Cap);
  ASSERT_EQ(Prof.Sigs.size(), 2u);
  EXPECT_EQ(Prof.Sigs[0], "T.aa()");
  EXPECT_EQ(Prof.Sigs[1], "T.bb()");
}

TEST(Analyses, MethodOrderDecodesEntryPaths) {
  Fixture F;
  PathGraphCache Paths(F.P);
  const PathGraph &GA = Paths.of(F.A);
  TraceCapture Cap;
  Cap.Options.Mode = TraceMode::MethodOrder;
  Cap.Threads.resize(1);
  // The single path of T.aa() starts at the method entry.
  Cap.Threads[0].Words.push_back(tracerec::makePath(F.A, GA.entryValue()));
  CodeProfile Prof = analyzeMethodOrder(F.P, Cap, Paths);
  ASSERT_EQ(Prof.Sigs.size(), 1u);
  EXPECT_EQ(Prof.Sigs[0], "T.aa()");
}

TEST(Analyses, ReplayTruncatesAtFirstCorruptWord) {
  // Once a word is corrupt, record alignment is lost; salvage keeps the
  // longest valid prefix of each thread instead of skipping bad words
  // (which would manufacture garbage events from misaligned data).
  Fixture F;
  TraceCapture Cap;
  Cap.Options.Mode = TraceMode::CuOrder;
  Cap.Threads.resize(1);
  auto &W = Cap.Threads[0].Words;
  W.push_back(tracerec::makeCuEnter(F.B));    // valid prefix
  W.push_back(0);                             // corrupt (kind 0)
  W.push_back(tracerec::makeCuEnter(F.A));    // after corruption: dropped
  SalvageStats Stats;
  CodeProfile Prof = analyzeCuOrder(F.P, Cap, &Stats);
  ASSERT_EQ(Prof.Sigs.size(), 1u);
  EXPECT_EQ(Prof.Sigs[0], "T.bb()");
  EXPECT_EQ(Stats.WordsScanned, 3u);
  EXPECT_EQ(Stats.WordsKept, 1u);
  EXPECT_EQ(Stats.WordsDropped, 2u);
  EXPECT_EQ(Stats.ThreadsTruncated, 1u);
  EXPECT_FALSE(Stats.clean());
}

TEST(Analyses, ReplayDropsThreadStartingWithBadMethod) {
  Fixture F;
  TraceCapture Cap;
  Cap.Options.Mode = TraceMode::MethodOrder;
  Cap.Threads.resize(2);
  Cap.Threads[0].Words.push_back(tracerec::makePath(999999, 0)); // bad method
  PathGraphCache Paths(F.P);
  Cap.Threads[1].Words.push_back(
      tracerec::makePath(F.A, Paths.of(F.A).entryValue()));
  SalvageStats Stats;
  CodeProfile Prof = analyzeMethodOrder(F.P, Cap, Paths, &Stats);
  ASSERT_EQ(Prof.Sigs.size(), 1u);
  EXPECT_EQ(Prof.Sigs[0], "T.aa()");
  EXPECT_EQ(Stats.ThreadsDropped, 1u);
  EXPECT_EQ(Stats.WordsKept, 1u);
}

TEST(Analyses, AnalyzeWrongModeYieldsEmptyProfile) {
  // Trace files are external input: a capture in the wrong mode must not
  // assert, it reports ModeMismatch and yields nothing.
  Fixture F;
  TraceCapture Cap;
  Cap.Options.Mode = TraceMode::HeapOrder;
  Cap.Threads.resize(1);
  Cap.Threads[0].Words.push_back(tracerec::makeCuEnter(F.A));
  SalvageStats Stats;
  CodeProfile Prof = analyzeCuOrder(F.P, Cap, &Stats);
  EXPECT_TRUE(Prof.Sigs.empty());
  EXPECT_TRUE(Stats.ModeMismatch);
  EXPECT_FALSE(Stats.clean());
}

TEST(Analyses, HeapOrderDedupsByEntryAndSkipsNonImageOperands) {
  // Build a method with one access site so its path has one operand.
  Program P;
  ClassId C = P.addClass("Box");
  P.classDef(C).InstanceFields.push_back({"v", P.intType(), C, false});
  MethodId M = P.addMethod(C, "get", {}, P.intType(), true);
  {
    IrBuilder Bld(P, M);
    uint16_t Obj = Bld.newObject(C);
    Bld.ret(Bld.getField(Obj, 0));
  }
  PathGraphCache Paths(P);
  const PathGraph &G = Paths.of(M);
  ASSERT_EQ(G.numPaths(), 1u);

  TraceCapture Cap;
  Cap.Options.Mode = TraceMode::HeapOrder;
  Cap.Threads.resize(1);
  auto &W = Cap.Threads[0].Words;
  W.push_back(tracerec::makePath(M, 0));
  W.push_back(8);                       // snapshot entry 7
  W.push_back(tracerec::makePath(M, 0));
  W.push_back(0);                       // not an image object -> skipped
  W.push_back(tracerec::makePath(M, 0));
  W.push_back(8);                       // duplicate of entry 7
  W.push_back(tracerec::makePath(M, 0));
  W.push_back(3);                       // entry 2

  std::vector<int32_t> Order = analyzeHeapAccessOrder(P, Cap, Paths);
  ASSERT_EQ(Order.size(), 2u);
  EXPECT_EQ(Order[0], 7);
  EXPECT_EQ(Order[1], 2);
}

TEST(Analyses, HeapProfileMapsEntriesThroughIdTable) {
  IdTable Ids;
  Ids.IncrementalIds = {10, 11, 12};
  Ids.StructuralHashes = {20, 21, 22};
  Ids.HeapPathHashes = {30, 31, 32};
  std::vector<int32_t> Order = {2, 0, 99 /*out of range -> dropped*/};
  HeapProfile Inc = heapProfileFor(Order, Ids, HeapStrategy::IncrementalId);
  HeapProfile Path = heapProfileFor(Order, Ids, HeapStrategy::HeapPath);
  EXPECT_EQ(Inc.Ids, (std::vector<uint64_t>{12, 10}));
  EXPECT_EQ(Path.Ids, (std::vector<uint64_t>{32, 30}));
}

TEST(Analyses, TruncatedHeapTraceConsumesWhatIsThere) {
  // A mode-1 SIGKILL can cut a trace mid-operands; replay must not read
  // past the end.
  Program P;
  ClassId C = P.addClass("Box");
  P.classDef(C).InstanceFields.push_back({"v", P.intType(), C, false});
  MethodId M = P.addMethod(C, "get2", {}, P.intType(), true);
  {
    IrBuilder Bld(P, M);
    uint16_t Obj = Bld.newObject(C);
    uint16_t V1 = Bld.getField(Obj, 0);
    uint16_t V2 = Bld.getField(Obj, 0);
    Bld.ret(Bld.binop(Opcode::Add, V1, V2));
  }
  PathGraphCache Paths(P);
  TraceCapture Cap;
  Cap.Options.Mode = TraceMode::HeapOrder;
  Cap.Threads.resize(1);
  Cap.Threads[0].Words.push_back(tracerec::makePath(M, 0));
  Cap.Threads[0].Words.push_back(5); // second operand is missing
  std::vector<int32_t> Order = analyzeHeapAccessOrder(P, Cap, Paths);
  ASSERT_EQ(Order.size(), 1u);
  EXPECT_EQ(Order[0], 4);
}
