//===- ParallelTest.cpp - Thread pool and pipeline determinism --------------===//
//
// Unit tests for the deterministic thread pool (chunking, exception
// propagation, nested-use rejection) and the contract the parallel
// pipeline stages rely on: the full profile-and-build pipeline must emit
// byte-identical ordering profiles, identity tables, and image bytes
// whether it runs on one worker or eight. This binary carries the "tsan"
// ctest label so a -DNIMG_SANITIZE=thread build can run it alone.
//
//===----------------------------------------------------------------------===//

#include "src/core/Builder.h"
#include "src/image/ImageFile.h"
#include "src/lang/Compile.h"
#include "src/support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

using namespace nimg;

namespace {

//===----------------------------------------------------------------------===//
// Pool unit tests.
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(103);
  Pool.parallelFor(Hits.size(), 1, "cover",
                   [&](size_t Begin, size_t End, size_t) {
                     for (size_t I = Begin; I < End; ++I)
                       Hits[I].fetch_add(1);
                   });
  for (size_t I = 0; I < Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokesBody) {
  ThreadPool Pool(4);
  std::atomic<int> Calls{0};
  Pool.parallelFor(0, 1, "empty",
                   [&](size_t, size_t, size_t) { Calls.fetch_add(1); });
  EXPECT_EQ(Calls.load(), 0);
}

TEST(ThreadPoolTest, SingleJobRunsInlineInsideParallelRegion) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.jobs(), 1);
  EXPECT_FALSE(ThreadPool::inParallelRegion());
  bool SawRegion = false;
  Pool.parallelFor(4, 1, "inline", [&](size_t, size_t, size_t) {
    SawRegion = ThreadPool::inParallelRegion();
  });
  EXPECT_TRUE(SawRegion);
  EXPECT_FALSE(ThreadPool::inParallelRegion());
}

TEST(ThreadPoolTest, ExceptionPropagatesFromInlineExecution) {
  ThreadPool Pool(1);
  EXPECT_THROW(Pool.parallelFor(8, 1, "throwing",
                                [](size_t, size_t, size_t) {
                                  throw std::runtime_error("task failed");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionPropagatesFromWorkers) {
  ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelFor(64, 1, "throwing",
                                [](size_t, size_t, size_t Chunk) {
                                  if (Chunk % 2 == 1)
                                    throw std::runtime_error("task failed");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, LowestChunkIndexExceptionWins) {
  // Several chunks throw; which worker ran which chunk is scheduling
  // noise, but the rethrown error must always come from the lowest chunk.
  ThreadPool Pool(4);
  for (int Round = 0; Round < 8; ++Round) {
    try {
      Pool.parallelFor(32, 1, "throwing",
                       [](size_t, size_t, size_t Chunk) {
                         if (Chunk >= 3)
                           throw std::runtime_error("chunk " +
                                                    std::to_string(Chunk));
                       });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error &E) {
      EXPECT_STREQ(E.what(), "chunk 3");
    }
  }
}

TEST(ThreadPoolTest, NestedUseIsRejected) {
  ThreadPool Pool(2);
  EXPECT_THROW(Pool.parallelFor(8, 1, "outer",
                                [&](size_t, size_t, size_t) {
                                  Pool.parallelFor(
                                      2, 1, "inner",
                                      [](size_t, size_t, size_t) {});
                                }),
               std::logic_error);
  // And on the inline path too: a 1-job pool still flags the region.
  ThreadPool Inline(1);
  EXPECT_THROW(Inline.parallelFor(2, 1, "outer",
                                  [&](size_t, size_t, size_t) {
                                    Inline.parallelFor(
                                        2, 1, "inner",
                                        [](size_t, size_t, size_t) {});
                                  }),
               std::logic_error);
}

TEST(ThreadPoolTest, MinChunkBoundsChunkGranularity) {
  ThreadPool Pool(4);
  std::mutex Mu;
  std::vector<std::pair<size_t, size_t>> Ranges;
  Pool.parallelFor(100, 40, "coarse", [&](size_t Begin, size_t End, size_t) {
    std::lock_guard<std::mutex> G(Mu);
    Ranges.emplace_back(Begin, End);
  });
  // ceil(100/40) = 3 chunks; all but the last span exactly MinChunk.
  EXPECT_EQ(Ranges.size(), 3u);
  size_t Total = 0;
  for (auto [Begin, End] : Ranges) {
    EXPECT_LT(Begin, End);
    Total += End - Begin;
  }
  EXPECT_EQ(Total, 100u);
}

TEST(ThreadPoolTest, ParallelMapPreservesIndexOrder) {
  setJobs(4);
  std::vector<size_t> Out = parallelMap(
      257, 8, "map", [](size_t I) { return I * I; });
  ASSERT_EQ(Out.size(), 257u);
  for (size_t I = 0; I < Out.size(); ++I)
    EXPECT_EQ(Out[I], I * I);
  setJobs(0);
}

TEST(ThreadPoolTest, JobsConfigurationResolvesOverrides) {
  setJobs(3);
  EXPECT_EQ(currentJobs(), 3);
  setJobs(0);
  EXPECT_GE(currentJobs(), 1);
  EXPECT_GE(hardwareJobs(), 1);
}

//===----------------------------------------------------------------------===//
// Pipeline determinism: jobs=1 vs jobs=8.
//===----------------------------------------------------------------------===//

/// A workload that spawns real threads so trace captures carry several
/// per-thread buffers — the case where the parallel trace post-processing
/// actually fans out and the thread-order merge is load-bearing.
const char *kSpawnWorkload = R"(
class State {
  static int ready = 0;
  static int done = 0;
  static int sum = 0;
}
class ArrayWorker {
  static void run() {
    while (State.ready == 0) { Sys.yield(); }
    int[] xs = new int[32];
    for (int i = 0; i < xs.length; i = i + 1) { xs[i] = i * 3; }
    int t = 0;
    for (int i = 0; i < xs.length; i = i + 1) { t = t + xs[i]; }
    State.sum = State.sum + t;
    State.done = State.done + 1;
  }
}
class StringWorker {
  static String label = "worker";
  static void run() {
    while (State.ready == 0) { Sys.yield(); }
    String s = label;
    for (int i = 0; i < 6; i = i + 1) { s = s + i; }
    State.sum = State.sum + 7;
    State.done = State.done + 1;
  }
}
class Main {
  static int main() {
    Sys.spawn("ArrayWorker.run");
    Sys.spawn("StringWorker.run");
    Sys.spawn("ArrayWorker.run");
    State.ready = 1;
    while (State.done < 3) { Sys.yield(); }
    Sys.print("sum: " + State.sum);
    return State.sum;
  }
}
)";

/// Everything the pipeline emits that must not depend on the worker count.
struct PipelineArtifacts {
  std::string CuCsv, MethodCsv, ClusterCsv, HeapIncCsv, HeapStructCsv,
      HeapPathCsv, BlocksCsv;
  std::vector<uint64_t> IncIds, StructIds, PathIds;
  uint64_t InlineFingerprint = 0;
  std::vector<uint8_t> ImageBytes;
  /// The same build with --split hotcold: decisions are a pure function
  /// of the merged block profile, so these must be worker-count-invariant
  /// too.
  uint64_t SplitFingerprint = 0;
  std::vector<uint8_t> SplitImageBytes;
  /// And with --blocks exttsp on top: the edge profile and the chosen
  /// block orders (folded into the decision fingerprint) must not depend
  /// on the worker count either.
  std::string EdgesCsv;
  uint64_t ExtTspFingerprint = 0;
  std::vector<uint8_t> ExtTspImageBytes;
  /// Fleet aggregation rides on the same pool: the merged profile and the
  /// image it drives must be worker-count-invariant too.
  std::string MergedCsv;
  std::vector<uint8_t> MergedImageBytes;
  size_t TraceThreads = 0;
};

PipelineArtifacts runPipeline(int Jobs) {
  setJobs(Jobs);
  PipelineArtifacts Art;

  Program P;
  std::vector<std::string> Errors;
  if (!compileSources({kSpawnWorkload}, P, Errors)) {
    for (const std::string &E : Errors)
      ADD_FAILURE() << E;
    return Art;
  }

  BuildConfig ProfCfg;
  ProfCfg.Seed = 1001;
  CollectedProfiles Prof = collectProfiles(P, ProfCfg, RunConfig());
  Art.CuCsv = Prof.Cu.toCsv();
  Art.MethodCsv = Prof.Method.toCsv();
  Art.ClusterCsv = Prof.Cluster.toCsv();
  Art.HeapIncCsv = Prof.IncrementalId.toCsv();
  Art.HeapStructCsv = Prof.StructuralHash.toCsv();
  Art.HeapPathCsv = Prof.HeapPath.toCsv();

  BuildConfig Opt;
  Opt.Seed = 7;
  Opt.CodeOrder = CodeStrategy::CuOrder;
  Opt.CodeProf = &Prof.Cu;
  Opt.UseHeapOrder = true;
  Opt.HeapOrder = HeapStrategy::HeapPath;
  Opt.HeapProf = &Prof.HeapPath;
  NativeImage Img = buildNativeImage(P, Opt);
  EXPECT_FALSE(Img.Built.Failed) << Img.Built.FailureMessage;
  EXPECT_TRUE(Img.ProfileDiag.CodeProfileApplied);
  EXPECT_TRUE(Img.ProfileDiag.HeapProfileApplied);

  Art.IncIds = Img.Ids.IncrementalIds;
  Art.StructIds = Img.Ids.StructuralHashes;
  Art.PathIds = Img.Ids.HeapPathHashes;
  Art.InlineFingerprint = Img.Code.InlineFingerprint;
  Art.ImageBytes = serializeImage(P, Img);
  Art.BlocksCsv = Prof.Blocks.toCsv();

  BuildConfig SplitCfg = Opt;
  SplitCfg.Split = SplitMode::HotCold;
  SplitCfg.BlockProf = &Prof.Blocks;
  NativeImage SplitImg = buildNativeImage(P, SplitCfg);
  EXPECT_FALSE(SplitImg.Built.Failed) << SplitImg.Built.FailureMessage;
  Art.SplitFingerprint = SplitImg.Split.DecisionFingerprint;
  Art.SplitImageBytes = serializeImage(P, SplitImg);

  Art.EdgesCsv = Prof.Edges.toCsv();
  BuildConfig TspCfg = SplitCfg;
  TspCfg.SplitOpts.Blocks = BlockOrderMode::ExtTsp;
  TspCfg.EdgeProf = &Prof.Edges;
  NativeImage TspImg = buildNativeImage(P, TspCfg);
  EXPECT_FALSE(TspImg.Built.Failed) << TspImg.Built.FailureMessage;
  Art.ExtTspFingerprint = TspImg.Split.DecisionFingerprint;
  Art.ExtTspImageBytes = serializeImage(P, TspImg);

  // Fleet path: capture a 3-member set (one instrumented run each under
  // the same pool), merge, and build from the merged profile.
  BuildConfig SetCfg = ProfCfg;
  SetCfg.ProfileGeneration = 100;
  std::vector<MemberProfile> Members =
      collectProfileSet(P, SetCfg, RunConfig(), {"a", "b", "c"});
  EXPECT_EQ(Members.size(), 3u);
  MergeResult MR = aggregateProfiles(Members);
  EXPECT_TRUE(MR.usable());
  Art.MergedCsv = MR.Profile.toCsv();
  BuildConfig MergedCfg = Opt;
  MergedCfg.CodeProf = nullptr;
  MergedCfg.CodeMembers = &Members;
  NativeImage MergedImg = buildNativeImage(P, MergedCfg);
  EXPECT_FALSE(MergedImg.Built.Failed) << MergedImg.Built.FailureMessage;
  EXPECT_TRUE(MergedImg.ProfileDiag.CodeProfileApplied);
  Art.MergedImageBytes = serializeImage(P, MergedImg);

  // Sanity: the profiling runs actually produced multi-thread traces and
  // nonempty profiles, otherwise this test exercises nothing.
  EXPECT_GT(Prof.Cu.Sigs.size(), 0u);
  EXPECT_GT(Prof.Method.Sigs.size(), 0u);
  EXPECT_GT(Prof.HeapPath.Ids.size(), 0u);
  return Art;
}

TEST(ParallelPipelineTest, JobsOneAndEightAreByteIdentical) {
  PipelineArtifacts One = runPipeline(1);
  PipelineArtifacts Eight = runPipeline(8);
  setJobs(0);

  EXPECT_EQ(One.CuCsv, Eight.CuCsv);
  EXPECT_EQ(One.MethodCsv, Eight.MethodCsv);
  EXPECT_EQ(One.ClusterCsv, Eight.ClusterCsv);
  EXPECT_EQ(One.HeapIncCsv, Eight.HeapIncCsv);
  EXPECT_EQ(One.HeapStructCsv, Eight.HeapStructCsv);
  EXPECT_EQ(One.HeapPathCsv, Eight.HeapPathCsv);
  EXPECT_EQ(One.IncIds, Eight.IncIds);
  EXPECT_EQ(One.StructIds, Eight.StructIds);
  EXPECT_EQ(One.PathIds, Eight.PathIds);
  EXPECT_EQ(One.InlineFingerprint, Eight.InlineFingerprint);
  EXPECT_EQ(One.ImageBytes, Eight.ImageBytes);
  EXPECT_EQ(One.BlocksCsv, Eight.BlocksCsv);
  EXPECT_EQ(One.SplitFingerprint, Eight.SplitFingerprint);
  EXPECT_EQ(One.SplitImageBytes, Eight.SplitImageBytes);
  EXPECT_EQ(One.EdgesCsv, Eight.EdgesCsv);
  EXPECT_EQ(One.ExtTspFingerprint, Eight.ExtTspFingerprint);
  EXPECT_EQ(One.ExtTspImageBytes, Eight.ExtTspImageBytes);
  EXPECT_EQ(One.MergedCsv, Eight.MergedCsv);
  EXPECT_EQ(One.MergedImageBytes, Eight.MergedImageBytes);
}

/// Sampled-capture analog of PipelineArtifacts: the capture itself (as
/// its cu profile CSV), the staggered member set, and the sampled-merged
/// image bytes.
struct SampledArtifacts {
  std::string CuCsv, MethodCsv;
  std::vector<std::string> MemberCsvs;
  std::vector<uint8_t> MergedImageBytes;
};

SampledArtifacts runSampledPipeline(int Jobs) {
  setJobs(Jobs);
  SampledArtifacts Art;

  Program P;
  std::vector<std::string> Errors;
  if (!compileSources({kSpawnWorkload}, P, Errors)) {
    for (const std::string &E : Errors)
      ADD_FAILURE() << E;
    return Art;
  }

  BuildConfig ProfCfg;
  ProfCfg.Seed = 1001;
  ProfCfg.ProfileCapture = CaptureKind::Sampled;
  ProfCfg.SamplePeriod = 512;
  CollectedProfiles Prof = collectProfiles(P, ProfCfg, RunConfig());
  EXPECT_GT(Prof.CuRun.SamplesTaken, 0u);
  Art.CuCsv = Prof.Cu.toCsv();
  Art.MethodCsv = Prof.Method.toCsv();

  BuildConfig SetCfg = ProfCfg;
  SetCfg.ProfileGeneration = 100;
  std::vector<MemberProfile> Members =
      collectProfileSet(P, SetCfg, RunConfig(), {"a", "b", "c"});
  EXPECT_EQ(Members.size(), 3u);
  for (const MemberProfile &M : Members)
    Art.MemberCsvs.push_back(M.Profile.toCsv());

  BuildConfig Opt;
  Opt.Seed = 7;
  Opt.CodeOrder = CodeStrategy::CuOrder;
  Opt.CodeMembers = &Members;
  NativeImage Img = buildNativeImage(P, Opt);
  EXPECT_FALSE(Img.Built.Failed) << Img.Built.FailureMessage;
  EXPECT_TRUE(Img.ProfileDiag.CodeProfileApplied);
  Art.MergedImageBytes = serializeImage(P, Img);
  return Art;
}

TEST(ParallelPipelineTest, SampledCaptureIsWorkerCountInvariant) {
  // The sample stream is driven by the sequential interpreter's model
  // clock, so the capture — and everything built from it — must be
  // byte-identical at any --jobs.
  SampledArtifacts One = runSampledPipeline(1);
  for (int Jobs : {2, 5, 8}) {
    SampledArtifacts J = runSampledPipeline(Jobs);
    EXPECT_EQ(One.CuCsv, J.CuCsv) << "jobs=" << Jobs;
    EXPECT_EQ(One.MethodCsv, J.MethodCsv) << "jobs=" << Jobs;
    EXPECT_EQ(One.MemberCsvs, J.MemberCsvs) << "jobs=" << Jobs;
    EXPECT_EQ(One.MergedImageBytes, J.MergedImageBytes) << "jobs=" << Jobs;
  }
  setJobs(0);
}

TEST(ParallelPipelineTest, HugePageBuildsAreWorkerCountInvariant) {
  // Multi-size packing is a sequential post-pass over the final clusters,
  // so a --huge-pages build (including its PackFingerprint fold into the
  // decision fingerprint) must be byte-identical at any --jobs.
  auto BuildHuge = [](int Jobs) {
    setJobs(Jobs);
    Program P;
    std::vector<std::string> Errors;
    EXPECT_TRUE(compileSources({kSpawnWorkload}, P, Errors));
    BuildConfig ProfCfg;
    ProfCfg.Seed = 1001;
    ProfCfg.Image.HugePages = 2;
    CollectedProfiles Prof = collectProfiles(P, ProfCfg, RunConfig());
    BuildConfig Opt;
    Opt.Seed = 7;
    Opt.CodeOrder = CodeStrategy::Cluster;
    Opt.CodeProf = &Prof.Cluster;
    Opt.Image.HugePages = 2;
    NativeImage Img = buildNativeImage(P, Opt);
    EXPECT_FALSE(Img.Built.Failed) << Img.Built.FailureMessage;
    return std::make_pair(serializeImage(P, Img),
                          Img.Split.DecisionFingerprint);
  };
  auto One = BuildHuge(1);
  for (int Jobs : {2, 5, 8}) {
    auto J = BuildHuge(Jobs);
    EXPECT_EQ(One.first, J.first) << "jobs=" << Jobs;
    EXPECT_EQ(One.second, J.second) << "jobs=" << Jobs;
  }
  setJobs(0);
}

TEST(ParallelPipelineTest, IntermediateJobCountsMatchToo) {
  // 1 vs 8 is the headline contract; 2 and 5 cover uneven chunk shapes
  // (5 workers over small ranges produce ragged final chunks).
  PipelineArtifacts One = runPipeline(1);
  for (int Jobs : {2, 5}) {
    PipelineArtifacts J = runPipeline(Jobs);
    EXPECT_EQ(One.ImageBytes, J.ImageBytes) << "jobs=" << Jobs;
    EXPECT_EQ(One.CuCsv, J.CuCsv) << "jobs=" << Jobs;
    EXPECT_EQ(One.ClusterCsv, J.ClusterCsv) << "jobs=" << Jobs;
    EXPECT_EQ(One.HeapPathCsv, J.HeapPathCsv) << "jobs=" << Jobs;
    EXPECT_EQ(One.SplitImageBytes, J.SplitImageBytes) << "jobs=" << Jobs;
    EXPECT_EQ(One.EdgesCsv, J.EdgesCsv) << "jobs=" << Jobs;
    EXPECT_EQ(One.ExtTspImageBytes, J.ExtTspImageBytes) << "jobs=" << Jobs;
    EXPECT_EQ(One.MergedCsv, J.MergedCsv) << "jobs=" << Jobs;
    EXPECT_EQ(One.MergedImageBytes, J.MergedImageBytes) << "jobs=" << Jobs;
  }
  setJobs(0);
}

} // namespace
