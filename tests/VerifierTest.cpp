//===- VerifierTest.cpp - IR verifier tests ----------------------------------===//

#include "src/ir/IrBuilder.h"
#include "src/ir/Printer.h"
#include "src/ir/Verifier.h"

#include <gtest/gtest.h>

using namespace nimg;

namespace {

struct Fixture {
  Program P;
  ClassId C;

  Fixture() { C = P.addClass("T"); }

  MethodId method() {
    return P.addMethod(C, "m" + std::to_string(P.numMethods()), {},
                       P.intType(), /*IsStatic=*/true);
  }

  std::vector<std::string> verify(MethodId M) {
    std::vector<std::string> Errors;
    verifyMethod(P, M, Errors);
    return Errors;
  }
};

} // namespace

TEST(Verifier, AcceptsWellFormedMethod) {
  Fixture F;
  MethodId M = F.method();
  IrBuilder B(F.P, M);
  uint16_t A = B.constInt(1);
  uint16_t Bv = B.constInt(2);
  B.ret(B.binop(Opcode::Add, A, Bv));
  EXPECT_TRUE(F.verify(M).empty());
}

TEST(Verifier, RejectsMissingTerminator) {
  Fixture F;
  MethodId M = F.method();
  IrBuilder B(F.P, M);
  B.constInt(1); // no terminator
  auto Errors = F.verify(M);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("terminator"), std::string::npos);
}

TEST(Verifier, RejectsEmptyBlock) {
  Fixture F;
  MethodId M = F.method();
  IrBuilder B(F.P, M);
  B.newBlock(); // left empty
  B.ret(B.constInt(0));
  auto Errors = F.verify(M);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("empty block"), std::string::npos);
}

TEST(Verifier, RejectsRegisterOutOfRange) {
  Fixture F;
  MethodId M = F.method();
  IrBuilder B(F.P, M);
  Instr Bad{Opcode::Move};
  Bad.Dst = 50; // never allocated
  Bad.A = 60;
  B.emit(Bad);
  B.ret(B.constInt(0));
  auto Errors = F.verify(M);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("register out of range"), std::string::npos);
}

TEST(Verifier, RejectsBranchTargetOutOfRange) {
  Fixture F;
  MethodId M = F.method();
  IrBuilder B(F.P, M);
  uint16_t Cond = B.constBool(true);
  Instr Br{Opcode::Br};
  Br.A = Cond;
  Br.Target = 99;
  Br.Aux2 = 0;
  B.emit(Br);
  auto Errors = F.verify(M);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("branch target"), std::string::npos);
}

TEST(Verifier, RejectsCallArityMismatch) {
  Fixture F;
  MethodId Callee =
      F.P.addMethod(F.C, "callee", {F.P.intType()}, F.P.intType(), true);
  {
    IrBuilder B(F.P, Callee);
    B.ret(0);
  }
  MethodId M = F.method();
  IrBuilder B(F.P, M);
  B.ret(B.callStatic(Callee, {})); // missing the int argument
  auto Errors = F.verify(M);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("argument count"), std::string::npos);
}

TEST(Verifier, RejectsNewOfAbstractClass) {
  Fixture F;
  ClassId Abs = F.P.addClass("Abs", -1, /*IsAbstract=*/true);
  MethodId M = F.method();
  IrBuilder B(F.P, M);
  Instr New{Opcode::NewObject};
  New.Dst = B.newReg();
  New.Aux = Abs;
  B.emit(New);
  B.ret(B.constInt(0));
  auto Errors = F.verify(M);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("abstract"), std::string::npos);
}

TEST(Verifier, RejectsStaticFieldIndexOutOfRange) {
  Fixture F;
  MethodId M = F.method();
  IrBuilder B(F.P, M);
  uint16_t Dst = B.getStatic(F.C, 3); // class T has no statics
  B.ret(Dst);
  auto Errors = F.verify(M);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("static field index"), std::string::npos);
}

TEST(Verifier, AbstractMethodsHaveNoBody) {
  Fixture F;
  MethodId M = F.P.addMethod(F.C, "abs", {F.P.objectType(F.C)}, F.P.intType(),
                             /*IsStatic=*/false, /*IsAbstract=*/true);
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyMethod(F.P, M, Errors));
  // Giving it a body is rejected.
  IrBuilder B(F.P, M);
  B.ret(B.constInt(1));
  Errors.clear();
  EXPECT_FALSE(verifyMethod(F.P, M, Errors));
}

TEST(Verifier, ProgramLevelChecksMain) {
  Fixture F;
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyProgram(F.P, Errors)); // no main set
  MethodId M = F.method();
  IrBuilder B(F.P, M);
  B.ret(B.constInt(0));
  F.P.MainMethod = M;
  Errors.clear();
  EXPECT_TRUE(verifyProgram(F.P, Errors));
}

TEST(Printer, RendersInstructionsReadably) {
  Fixture F;
  MethodId M = F.method();
  IrBuilder B(F.P, M);
  uint16_t A = B.constInt(42);
  uint16_t S = B.constString(F.P.internString("hello"));
  uint16_t Sum = B.binop(Opcode::Concat, S, A);
  B.ret(Sum);
  std::string Text = printMethod(F.P, M);
  EXPECT_NE(Text.find("= 42"), std::string::npos);
  EXPECT_NE(Text.find("\"hello\""), std::string::npos);
  EXPECT_NE(Text.find("concat"), std::string::npos);
  EXPECT_NE(Text.find("ret"), std::string::npos);
}
