//===- HugePageTest.cpp - Multi-size paging and huge-page layout tests ------===//
//
// The --huge-pages lane: per-size fault costs, the mixed-size page index
// space of PagingSim, eviction at both page sizes, the layout overlay
// invariant (no byte offset moves), the cluster solver's multi-size
// packing, and the end-to-end budget-0 byte-identity guarantee.
//
//===----------------------------------------------------------------------===//

#include "src/core/Builder.h"
#include "src/fleet/FleetCache.h"
#include "src/image/ImageFile.h"
#include "src/lang/Compile.h"
#include "src/ordering/ClusterLayout.h"
#include "src/runtime/ExecEngine.h"
#include "src/runtime/Paging.h"

#include <gtest/gtest.h>

using namespace nimg;

namespace {

PagingConfig hugeCfg(uint32_t HugeTextPages, uint32_t Readahead = 4) {
  PagingConfig Cfg;
  Cfg.ReadaheadPages = Readahead;
  Cfg.HugeTextPages = HugeTextPages;
  return Cfg;
}

} // namespace

//===----------------------------------------------------------------------===//
// Cost model.
//===----------------------------------------------------------------------===//

TEST(HugeCostModel, PerSizeFaultCosts) {
  CostModel Cost;
  EXPECT_EQ(Cost.majorFaultNs(BasePageBytes), Cost.FaultNs);
  // 2 MiB page: one seek plus (2048 - 4) KiB of extra transfer.
  EXPECT_EQ(Cost.majorFaultNs(HugePageBytes),
            Cost.FaultNs + 2044.0 * Cost.TransferNsPerKiB);
  EXPECT_EQ(Cost.majorFaultNs(HugePageBytes), 284400.0);
}

TEST(HugeCostModel, FiveArgFormulaIsBitIdenticalWithZeroHugeFaults) {
  CostModel Cost;
  for (uint64_t Faults : {0ull, 1ull, 17ull, 4096ull}) {
    double Three = Cost.startupNs(123456, 789, Faults);
    double Five = Cost.startupNs(123456, 789, Faults, 0, HugePageBytes);
    EXPECT_EQ(Three, Five);
  }
  // And with huge faults it charges exactly the per-size increment.
  EXPECT_EQ(Cost.startupNs(100, 0, 2, 3, HugePageBytes),
            Cost.startupNs(100, 0, 2) + 3.0 * 284400.0);
}

//===----------------------------------------------------------------------===//
// Mixed-size page index space.
//===----------------------------------------------------------------------===//

TEST(HugePaging, MixedSizeIndexSpace) {
  // 2 huge pages + a 100-byte small tail.
  uint64_t TextSize = 2ull * HugePageBytes + 100;
  PagingSim Sim(TextSize, 1 << 16, hugeCfg(2));
  EXPECT_EQ(Sim.hugeTextPages(), 2u);
  EXPECT_EQ(Sim.pageStates(ImageSection::Text).size(), 3u);

  EXPECT_EQ(Sim.pageOf(ImageSection::Text, 0), 0u);
  EXPECT_EQ(Sim.pageOf(ImageSection::Text, HugePageBytes - 1), 0u);
  EXPECT_EQ(Sim.pageOf(ImageSection::Text, HugePageBytes), 1u);
  EXPECT_EQ(Sim.pageOf(ImageSection::Text, 2ull * HugePageBytes), 2u);

  EXPECT_EQ(Sim.pageSizeBytes(ImageSection::Text, 0), HugePageBytes);
  EXPECT_EQ(Sim.pageSizeBytes(ImageSection::Text, 1), HugePageBytes);
  EXPECT_EQ(Sim.pageSizeBytes(ImageSection::Text, 2), BasePageBytes);
  EXPECT_EQ(Sim.pageSizeBytes(ImageSection::HeapSec, 0), BasePageBytes);

  EXPECT_EQ(Sim.pageStartOffset(ImageSection::Text, 1),
            uint64_t(HugePageBytes));
  EXPECT_EQ(Sim.pageStartOffset(ImageSection::Text, 2),
            2ull * HugePageBytes);

  // The heap never maps huge.
  EXPECT_EQ(Sim.pageOf(ImageSection::HeapSec, 2 * BasePageBytes), 2u);
}

TEST(HugePaging, BudgetClampsToSectionSize) {
  // A 10-page budget over a 3 MiB section covers at most 2 huge pages.
  PagingSim Sim(3ull * 1024 * 1024, 0, hugeCfg(10));
  EXPECT_EQ(Sim.hugeTextPages(), 2u);
  // 2 huge pages cover 4 MiB > 3 MiB: the region clamps to the section
  // and no small pages remain.
  EXPECT_EQ(Sim.pageStates(ImageSection::Text).size(), 2u);
}

TEST(HugePaging, HugeFaultAccountingAndNoReadaheadInRegion) {
  uint64_t TextSize = HugePageBytes + 64 * BasePageBytes;
  PagingSim Sim(TextSize, 0, hugeCfg(1));

  // First touch anywhere in the huge page: one huge major, and no
  // readahead (the huge page is its own cluster).
  Sim.touch(ImageSection::Text, 12345, 1);
  EXPECT_EQ(Sim.faults(ImageSection::Text), 1u);
  EXPECT_EQ(Sim.counters().TextHugeFaults, 1u);
  EXPECT_EQ(Sim.prefetchedPages(), 0u);
  EXPECT_EQ(Sim.residentPages(ImageSection::Text), 1u);

  // The whole 2 MiB is now resident: no further fault inside it.
  Sim.touch(ImageSection::Text, HugePageBytes - 1, 1);
  EXPECT_EQ(Sim.faults(ImageSection::Text), 1u);

  // First small page behind the region: a base-size major whose cluster
  // aligns relative to the region end.
  Sim.touch(ImageSection::Text, HugePageBytes, 1);
  EXPECT_EQ(Sim.faults(ImageSection::Text), 2u);
  EXPECT_EQ(Sim.counters().TextHugeFaults, 1u);
  EXPECT_EQ(Sim.prefetchedPages(), 3u); // readahead 4 - the faulting page
  EXPECT_EQ(Sim.pageStates(ImageSection::Text)[1], PageState::Faulted);
  EXPECT_EQ(Sim.pageStates(ImageSection::Text)[4], PageState::Prefetched);
}

TEST(HugePaging, SmallClustersAlignRelativeToRegionEnd) {
  uint64_t TextSize = HugePageBytes + 64 * BasePageBytes;
  PagingSim Sim(TextSize, 0, hugeCfg(1));
  // Page index 6 = small page 5 behind the region; its cluster is small
  // pages [4, 8) = indices [5, 9).
  uint64_t Start = 0, End = 0;
  Sim.clusterRange(ImageSection::Text, 6, Start, End);
  EXPECT_EQ(Start, 5u);
  EXPECT_EQ(End, 9u);
  // A huge page is its own cluster.
  Sim.clusterRange(ImageSection::Text, 0, Start, End);
  EXPECT_EQ(Start, 0u);
  EXPECT_EQ(End, 1u);

  Sim.touch(ImageSection::Text, HugePageBytes + 5 * BasePageBytes, 1);
  EXPECT_EQ(Sim.pageStates(ImageSection::Text)[6], PageState::Faulted);
  EXPECT_EQ(Sim.pageStates(ImageSection::Text)[5], PageState::Prefetched);
  EXPECT_EQ(Sim.pageStates(ImageSection::Text)[8], PageState::Prefetched);
  EXPECT_EQ(Sim.pageStates(ImageSection::Text)[9], PageState::Untouched);
}

//===----------------------------------------------------------------------===//
// Eviction at mixed sizes.
//===----------------------------------------------------------------------===//

TEST(HugePaging, EvictHugePageRefaultsAsHuge) {
  PagingSim Sim(HugePageBytes + 16 * BasePageBytes, 0, hugeCfg(1));
  Sim.touch(ImageSection::Text, 0, 1);
  ASSERT_EQ(Sim.counters().TextHugeFaults, 1u);

  EXPECT_TRUE(Sim.evictPage(ImageSection::Text, 0));
  EXPECT_EQ(Sim.residentPages(ImageSection::Text), 0u);
  EXPECT_EQ(Sim.counters().EvictedPages, 1u);
  EXPECT_EQ(Sim.pageStates(ImageSection::Text)[0], PageState::Untouched);
  // Double-evict is a no-op.
  EXPECT_FALSE(Sim.evictPage(ImageSection::Text, 0));

  Sim.touch(ImageSection::Text, HugePageBytes / 2, 1);
  EXPECT_EQ(Sim.faults(ImageSection::Text), 2u);
  EXPECT_EQ(Sim.counters().TextHugeFaults, 2u);
}

TEST(HugePaging, EvictPrefetchedSmallPageBehindHugeRegion) {
  PagingSim Sim(HugePageBytes + 16 * BasePageBytes, 0, hugeCfg(1));
  // Fault small page index 1 (first behind the region); indices 2..4 come
  // in by readahead.
  Sim.touch(ImageSection::Text, HugePageBytes, 1);
  ASSERT_EQ(Sim.pageStates(ImageSection::Text)[2], PageState::Prefetched);

  EXPECT_TRUE(Sim.evictPage(ImageSection::Text, 2));
  EXPECT_EQ(Sim.prefetchedPages(), 2u);
  // Re-touching the evicted prefetched page is a fresh small major.
  uint64_t HugeBefore = Sim.counters().TextHugeFaults;
  Sim.touch(ImageSection::Text, HugePageBytes + BasePageBytes, 1);
  EXPECT_EQ(Sim.faults(ImageSection::Text), 2u);
  EXPECT_EQ(Sim.counters().TextHugeFaults, HugeBefore);
}

TEST(HugePaging, FleetCacheFifoClampsAndEvictsAcrossSizes) {
  // Capacity 2 clamps up to the readahead cluster (4). The huge page
  // occupies ONE slot, exactly like the per-instance resident list.
  PagingConfig Cfg = hugeCfg(1);
  FleetPageCache Cache(HugePageBytes + 64 * BasePageBytes, 0, Cfg, 2);

  EXPECT_EQ(Cache.touchPage(ImageSection::Text, 0), FleetTouch::Major);
  EXPECT_EQ(Cache.touchPage(ImageSection::Text, 0), FleetTouch::WarmHit);

  // A small-page fault behind the region pulls its 4-page cluster: with
  // the huge page that is 5 residents > 4, so the oldest (the huge page)
  // is evicted.
  EXPECT_EQ(Cache.touchPage(ImageSection::Text, 1), FleetTouch::Major);
  EXPECT_GT(Cache.evictions(), 0u);
  EXPECT_EQ(Cache.touchPage(ImageSection::Text, 0), FleetTouch::Major);
  EXPECT_EQ(Cache.uniquePages(), 2u); // re-faults do not re-count
}

TEST(HugePaging, ZeroBudgetIsByteIdenticalToNoBudget) {
  PagingConfig Plain;
  Plain.ReadaheadPages = 4;
  PagingSim A(48 * BasePageBytes, 8 * BasePageBytes, Plain);
  PagingSim B(48 * BasePageBytes, 8 * BasePageBytes, hugeCfg(0));
  for (uint64_t Off : {0ull, 4097ull, 100000ull, 5ull, 190000ull}) {
    A.touch(ImageSection::Text, Off, 3);
    B.touch(ImageSection::Text, Off, 3);
  }
  A.touch(ImageSection::HeapSec, 9000, 1);
  B.touch(ImageSection::HeapSec, 9000, 1);
  EXPECT_EQ(A.faults(ImageSection::Text), B.faults(ImageSection::Text));
  EXPECT_EQ(A.prefetchedPages(), B.prefetchedPages());
  EXPECT_EQ(A.pageStates(ImageSection::Text), B.pageStates(ImageSection::Text));
  EXPECT_EQ(A.counters().TextHugeFaults, 0u);
  EXPECT_EQ(B.counters().TextHugeFaults, 0u);
}

//===----------------------------------------------------------------------===//
// Layout overlay.
//===----------------------------------------------------------------------===//

namespace {

const char *kSource = R"MJ(
class Worker {
  static int step(int x) { return x * 3 + 1; }
}
class Main { static int main() {
  int acc = 0;
  for (int i = 0; i < 32; i = i + 1) { acc = acc + Worker.step(i); }
  Sys.print("acc=" + acc);
  return acc;
} }
)MJ";

struct Compiled {
  Program P;
  Compiled() {
    std::vector<std::string> Errors;
    EXPECT_TRUE(compileSources({kSource}, P, Errors));
    for (auto &E : Errors)
      ADD_FAILURE() << E;
  }
};

} // namespace

TEST(HugeLayout, OverlayMovesNoByteOffset) {
  Compiled C;
  BuildConfig Base;
  Base.Seed = 11;
  NativeImage Plain = buildNativeImage(C.P, Base);
  BuildConfig HCfg = Base;
  HCfg.Image.HugePages = 2;
  NativeImage Huge = buildNativeImage(C.P, HCfg);

  EXPECT_EQ(Plain.Layout.CuOffsets, Huge.Layout.CuOffsets);
  EXPECT_EQ(Plain.Layout.CuOrder, Huge.Layout.CuOrder);
  EXPECT_EQ(Plain.Layout.TextSize, Huge.Layout.TextSize);
  EXPECT_EQ(Plain.Layout.NativeTailOffset, Huge.Layout.NativeTailOffset);
  EXPECT_EQ(Plain.Layout.ObjectOffsets, Huge.Layout.ObjectOffsets);
  EXPECT_EQ(Plain.Layout.HeapSize, Huge.Layout.HeapSize);

  EXPECT_EQ(Huge.Layout.HugePagesRequested, 2u);
  EXPECT_GT(Huge.Layout.HugePages, 0u);
  EXPECT_GT(Huge.Layout.HugeRegionSize, 0u);
  EXPECT_LE(Huge.Layout.HugeRegionSize, Huge.Layout.TextSize);
}

TEST(HugeLayout, UnfillableBudgetClampsAndRecordsTypedIssue) {
  Compiled C;
  BuildConfig Cfg;
  Cfg.Seed = 11;
  Cfg.Image.HugePages = 64; // far beyond the hot prefix of a tiny image
  NativeImage Img = buildNativeImage(C.P, Cfg);
  EXPECT_LT(Img.Layout.HugePages, Img.Layout.HugePagesRequested);
  bool Found = false;
  for (const ProfileIssue &I : Img.ProfileDiag.Issues)
    if (I.Kind == ProfileError::HugeBudgetUnfillable)
      Found = true;
  EXPECT_TRUE(Found) << "missing huge_budget_unfillable diagnostic";
}

TEST(HugeLayout, BudgetZeroBuildIsByteIdentical) {
  Compiled C;
  BuildConfig Base;
  Base.Seed = 23;
  NativeImage Plain = buildNativeImage(C.P, Base);
  BuildConfig Zero = Base;
  Zero.Image.HugePages = 0;
  NativeImage ZeroImg = buildNativeImage(C.P, Zero);
  EXPECT_EQ(serializeImage(C.P, Plain), serializeImage(C.P, ZeroImg));

  RunConfig RC;
  RunStats A = runImage(Plain, RC);
  RunStats B = runImage(ZeroImg, RC);
  EXPECT_EQ(A.TextFaults, B.TextFaults);
  EXPECT_EQ(A.TextHugeFaults, 0u);
  EXPECT_EQ(B.TextHugeFaults, 0u);
  EXPECT_EQ(A.TimeNs, B.TimeNs);
}

TEST(HugeLayout, HugeBuildChargesPerSizeCostsAndNeverAddsMajors) {
  Compiled C;
  BuildConfig Base;
  Base.Seed = 31;
  NativeImage Plain = buildNativeImage(C.P, Base);
  BuildConfig HCfg = Base;
  HCfg.Image.HugePages = 1;
  NativeImage Huge = buildNativeImage(C.P, HCfg);
  EXPECT_NE(Plain.Split.DecisionFingerprint, Huge.Split.DecisionFingerprint);

  RunConfig RC;
  RunStats A = runImage(Plain, RC);
  RunStats B = runImage(Huge, RC);
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_GT(B.TextHugeFaults, 0u);
  EXPECT_LE(B.TextFaults, A.TextFaults);
  // The time model reproduces the per-size formula exactly.
  CostModel Cost;
  EXPECT_EQ(B.TimeNs,
            Cost.startupNs(B.Instructions, B.ProbeUnits,
                           B.totalFaults() - B.TextHugeFaults,
                           B.TextHugeFaults, HugePageBytes));
}

//===----------------------------------------------------------------------===//
// Cluster solver packing.
//===----------------------------------------------------------------------===//

namespace {

/// Builds a graph of singleton clusters (no edges merge across them) with
/// the given CU byte sizes; method i roots CU i.
void singletonGraph(const std::vector<uint32_t> &Sizes, CuTransitionGraph &G,
                    CompiledProgram &CP) {
  for (size_t I = 0; I < Sizes.size(); ++I) {
    G.FirstSeen.push_back(MethodId(I));
    CompilationUnit CU;
    CU.Root = MethodId(I);
    CU.CodeSize = Sizes[I];
    CP.CUs.push_back(std::move(CU));
    CP.CuOfMethod.push_back(int32_t(I));
  }
  // One featherweight edge so the graph is not "empty" (weight ties break
  // by rank; the page budget below blocks every merge anyway).
  G.Edges.push_back({MethodId(0), MethodId(1), 1});
}

} // namespace

TEST(HugeCluster, PacksFirstFitAndDefersOversizedClusters) {
  // 1.5 MiB, 1 MiB, 0.4 MiB singletons against a 1-huge-page budget:
  // A fits (1.5), B does not (2.5 > 2), C fits behind A (1.9 <= 2).
  CuTransitionGraph G;
  CompiledProgram CP;
  singletonGraph({1536 * 1024, 1024 * 1024, 409 * 1024}, G, CP);
  ClusterOptions Opts;
  Opts.PageBudgetBytes = 1; // reject every merge: keep singletons
  Opts.HugePages = 1;
  ClusterStats Stats;
  std::vector<MethodId> Order = clusterLayout(G, CP, Opts, &Stats);
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(Order[0], MethodId(0));
  EXPECT_EQ(Order[1], MethodId(2)); // promoted past the deferred B
  EXPECT_EQ(Order[2], MethodId(1));
  EXPECT_EQ(Stats.HugePromotedClusters, 2u);
  EXPECT_EQ(Stats.HugeDeferredClusters, 1u);
  EXPECT_EQ(Stats.HugePackedBytes, uint64_t(1536 + 409) * 1024);
  EXPECT_EQ(Stats.HugePagesJustified, 1u);
  EXPECT_FALSE(Stats.HugeBudgetUnfillable);
  EXPECT_NE(Stats.PackFingerprint, 0u);
}

TEST(HugeCluster, IdentityWhenEverythingFitsAndZeroBudgetNoOp) {
  CuTransitionGraph G;
  CompiledProgram CP;
  singletonGraph({4096, 8192, 4096, 12288}, G, CP);
  ClusterOptions Zero;
  Zero.PageBudgetBytes = 1;
  ClusterStats ZeroStats;
  std::vector<MethodId> Baseline = clusterLayout(G, CP, Zero, &ZeroStats);
  EXPECT_EQ(ZeroStats.PackFingerprint, 0u);

  ClusterOptions Huge = Zero;
  Huge.HugePages = 4;
  ClusterStats HugeStats;
  std::vector<MethodId> Packed = clusterLayout(G, CP, Huge, &HugeStats);
  // Every cluster fits: the permutation is the identity of the
  // single-size pass.
  EXPECT_EQ(Packed, Baseline);
  EXPECT_EQ(HugeStats.HugePromotedClusters, 4u);
  EXPECT_EQ(HugeStats.HugeDeferredClusters, 0u);
  // ~28 KiB of hot code justifies 1 of the 4 requested pages.
  EXPECT_EQ(HugeStats.HugePagesJustified, 1u);
  EXPECT_TRUE(HugeStats.HugeBudgetUnfillable);
  EXPECT_NE(HugeStats.PackFingerprint, 0u);
}

TEST(HugeCluster, PackFingerprintCoversTheBudget) {
  CuTransitionGraph G;
  CompiledProgram CP;
  singletonGraph({4096, 8192}, G, CP);
  ClusterOptions A, B;
  A.HugePages = 1;
  B.HugePages = 2;
  ClusterStats SA, SB;
  clusterLayout(G, CP, A, &SA);
  clusterLayout(G, CP, B, &SB);
  EXPECT_NE(SA.PackFingerprint, SB.PackFingerprint);
}
