//===- DocsCheckTest.cpp - Keep docs/ in sync with the metrics registry ------===//
//
// Grep-based consistency checker between the documentation and the code:
// every `nimg.*` metric name mentioned anywhere under docs/ must exist in
// the source (a static NIMG_COUNTER_ADD / NIMG_GAUGE_SET /
// NIMG_HIST_RECORD literal, a documented dynamic family, or a family
// prefix of such a literal), and conversely every static metric literal
// in src/ must be documented in docs/OBSERVABILITY.md — as must every
// startup-report section name (the csvRow section literals in
// StartupReport.cpp). Runs in tier-1 under the "docs" ctest label, so a
// renamed counter or a new report section fails the build until the
// reference table follows.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

std::string readFile(const fs::path &Path) {
  std::ifstream F(Path, std::ios::binary);
  EXPECT_TRUE(F.good()) << "cannot read " << Path;
  std::ostringstream S;
  S << F.rdbuf();
  return S.str();
}

bool isNameChar(char C) {
  return (C >= 'a' && C <= 'z') || (C >= '0' && C <= '9') || C == '_' ||
         C == '.';
}

/// All maximal `nimg.<name>` tokens in \p Text, trailing dots stripped
/// (so "nimg.parallel.<stage>.chunks" and a sentence-ending "nimg.run."
/// both yield their family prefix).
std::set<std::string> nimgTokens(const std::string &Text) {
  std::set<std::string> Out;
  const std::string Marker = "nimg.";
  for (size_t At = Text.find(Marker); At != std::string::npos;
       At = Text.find(Marker, At + 1)) {
    if (At > 0 && isNameChar(Text[At - 1]))
      continue; // inside a longer identifier, e.g. a file name
    size_t End = At;
    while (End < Text.size() && isNameChar(Text[End]))
      ++End;
    std::string Tok = Text.substr(At, End - At);
    while (!Tok.empty() && Tok.back() == '.')
      Tok.pop_back();
    if (Tok.size() > Marker.size())
      Out.insert(Tok);
  }
  return Out;
}

/// Static metric-name literals in \p Text: the quoted first argument of
/// the registration macros.
void collectStaticLiterals(const std::string &Text,
                           std::set<std::string> &Out) {
  for (const char *Macro : {"NIMG_COUNTER_ADD(\"", "NIMG_GAUGE_SET(\"",
                            "NIMG_HIST_RECORD(\""}) {
    const std::string M = Macro;
    for (size_t At = Text.find(M); At != std::string::npos;
         At = Text.find(M, At + 1)) {
      size_t Start = At + M.size();
      size_t End = Text.find('"', Start);
      if (End == std::string::npos)
        continue;
      std::string Name = Text.substr(Start, End - Start);
      if (Name.rfind("nimg.", 0) == 0)
        Out.insert(Name);
    }
  }
}

/// Dynamic metric families (built at runtime via NIMG_COUNTER_ADD_DYN):
/// any documented name under these prefixes is considered registered.
const std::vector<std::string> &dynamicFamilies() {
  static const std::vector<std::string> Families = {
      "nimg.profile.load",
      "nimg.build.profile_rejected",
      "nimg.parallel",
      "nimg.merge.quarantined",
  };
  return Families;
}

struct Inventory {
  std::set<std::string> Static;
  Inventory() {
    fs::path Src = fs::path(NIMG_SOURCE_DIR) / "src";
    EXPECT_TRUE(fs::is_directory(Src)) << Src;
    for (const fs::directory_entry &E : fs::recursive_directory_iterator(Src)) {
      if (!E.is_regular_file())
        continue;
      fs::path Ext = E.path().extension();
      if (Ext != ".h" && Ext != ".cpp")
        continue;
      collectStaticLiterals(readFile(E.path()), Static);
    }
    EXPECT_GT(Static.size(), 20u)
        << "metric literal extraction looks broken";
  }

  bool known(const std::string &Tok) const {
    if (Static.count(Tok))
      return true;
    for (const std::string &Fam : dynamicFamilies())
      if (Tok == Fam || Tok.rfind(Fam + ".", 0) == 0)
        return true;
    // A family prefix of a static literal ("nimg.order.cluster" for
    // "nimg.order.cluster.runs") is fine in prose.
    for (const std::string &S : Static)
      if (S.rfind(Tok + ".", 0) == 0)
        return true;
    return false;
  }
};

const Inventory &inventory() {
  static Inventory *I = new Inventory();
  return *I;
}

std::vector<fs::path> docFiles() {
  fs::path Docs = fs::path(NIMG_SOURCE_DIR) / "docs";
  std::vector<fs::path> Out;
  if (fs::is_directory(Docs))
    for (const fs::directory_entry &E : fs::directory_iterator(Docs))
      if (E.is_regular_file() && E.path().extension() == ".md")
        Out.push_back(E.path());
  return Out;
}

} // namespace

TEST(DocsCheck, ExpectedDocsExist) {
  fs::path Docs = fs::path(NIMG_SOURCE_DIR) / "docs";
  for (const char *Name :
       {"ARCHITECTURE.md", "ORDERING.md", "OBSERVABILITY.md", "FLEET.md"})
    EXPECT_TRUE(fs::is_regular_file(Docs / Name)) << Name;
}

TEST(DocsCheck, EveryDocumentedMetricExistsInRegistry) {
  std::vector<fs::path> Files = docFiles();
  ASSERT_FALSE(Files.empty()) << "no docs/*.md found";
  for (const fs::path &File : Files) {
    std::set<std::string> Tokens = nimgTokens(readFile(File));
    for (const std::string &Tok : Tokens)
      EXPECT_TRUE(inventory().known(Tok))
          << File.filename() << " mentions unknown metric '" << Tok << "'";
  }
}

TEST(DocsCheck, EveryStaticMetricIsDocumented) {
  std::string Ref = readFile(fs::path(NIMG_SOURCE_DIR) / "docs" /
                             "OBSERVABILITY.md");
  for (const std::string &Name : inventory().Static)
    EXPECT_NE(Ref.find(Name), std::string::npos)
        << "metric '" << Name
        << "' is not documented in docs/OBSERVABILITY.md";
}

TEST(DocsCheck, ReadmeLinksTheDocs) {
  std::string Readme = readFile(fs::path(NIMG_SOURCE_DIR) / "README.md");
  for (const char *Link : {"docs/ARCHITECTURE.md", "docs/ORDERING.md",
                           "docs/OBSERVABILITY.md", "docs/FLEET.md"})
    EXPECT_NE(Readme.find(Link), std::string::npos)
        << "README.md does not link " << Link;
}

/// The startup report's CSV rows name their section in the first `csvRow`
/// argument; those section names double as the report's public schema.
/// Each one (family prefix before any '.') must have a field-group row in
/// OBSERVABILITY.md of the form "- `<section>` —", so a new report
/// section fails this test until the reference list follows.
TEST(DocsCheck, EveryReportSectionIsDocumented) {
  std::string Src = readFile(fs::path(NIMG_SOURCE_DIR) / "src" / "obs" /
                             "StartupReport.cpp");
  std::set<std::string> Sections;
  const std::string Marker = "csvRow(Out, \"";
  for (size_t At = Src.find(Marker); At != std::string::npos;
       At = Src.find(Marker, At + 1)) {
    size_t Start = At + Marker.size();
    size_t End = Src.find('"', Start);
    if (End == std::string::npos)
      continue;
    std::string Sec = Src.substr(Start, End - Start);
    Sec = Sec.substr(0, Sec.find('.'));
    if (!Sec.empty())
      Sections.insert(Sec);
  }
  ASSERT_GE(Sections.size(), 5u) << "section extraction looks broken";

  std::string Ref = readFile(fs::path(NIMG_SOURCE_DIR) / "docs" /
                             "OBSERVABILITY.md");
  for (const std::string &Sec : Sections)
    EXPECT_NE(Ref.find("- `" + Sec + "` —"), std::string::npos)
        << "startup-report section '" << Sec
        << "' is missing its field-group row \"- `" << Sec
        << "` — ...\" in docs/OBSERVABILITY.md";
}
