//===- ExtTspTest.cpp - Ext-TSP block reordering properties ----------------===//
//
// Property tests for the ext-TSP solver (src/ordering/ExtTsp.h) on random
// CFGs — the emitted order is always a permutation with the entry block
// first and never scores below block index order — plus build-level
// determinism: an ext-TSP image is byte-identical at any --jobs.
//
//===----------------------------------------------------------------------===//

#include "src/core/Builder.h"
#include "src/image/ImageFile.h"
#include "src/lang/Compile.h"
#include "src/ordering/ExtTsp.h"
#include "src/support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

using namespace nimg;

namespace {

/// One random CFG: block sizes plus weighted edges. Edge endpoints may
/// repeat and include self-loops/out-of-range targets on purpose — the
/// solver must sanitize, not trust.
struct RandomCfg {
  std::vector<uint32_t> Sizes;
  std::vector<ExtTspEdge> Edges;
};

RandomCfg makeCfg(std::mt19937 &Rng) {
  RandomCfg C;
  std::uniform_int_distribution<uint32_t> NumBlocks(3, 40);
  std::uniform_int_distribution<uint32_t> BlockSize(4, 96);
  uint32_t N = NumBlocks(Rng);
  C.Sizes.resize(N);
  for (uint32_t &S : C.Sizes)
    S = BlockSize(Rng);
  std::uniform_int_distribution<uint32_t> NumEdges(0, 3 * N);
  std::uniform_int_distribution<uint32_t> Endpoint(0, N + 1); // incl. bad
  std::uniform_int_distribution<uint64_t> Weight(0, 1000);    // incl. zero
  uint32_t E = NumEdges(Rng);
  for (uint32_t I = 0; I < E; ++I)
    C.Edges.push_back({Endpoint(Rng), Endpoint(Rng), Weight(Rng)});
  return C;
}

TEST(ExtTspTest, EmittedOrderIsEntryFirstPermutationScoringAtLeastIdentity) {
  std::mt19937 Rng(20250809);
  for (int Trial = 0; Trial < 200; ++Trial) {
    SCOPED_TRACE(::testing::Message() << "trial=" << Trial);
    RandomCfg C = makeCfg(Rng);
    ExtTspResult R = extTspOrder(C.Sizes, C.Edges);

    // Permutation bijection over [0, N) with the entry block first.
    ASSERT_EQ(R.Order.size(), C.Sizes.size());
    ASSERT_FALSE(R.Order.empty());
    EXPECT_EQ(R.Order[0], 0u);
    std::vector<uint32_t> Sorted = R.Order;
    std::sort(Sorted.begin(), Sorted.end());
    std::vector<uint32_t> Iota(C.Sizes.size());
    std::iota(Iota.begin(), Iota.end(), 0u);
    EXPECT_EQ(Sorted, Iota);

    // The emitted order never loses to block index order, and the
    // reported scores match an independent re-evaluation.
    EXPECT_GE(R.Score, R.IdentityScore);
    EXPECT_DOUBLE_EQ(R.Score, extTspScore(R.Order, C.Sizes, C.Edges));
    EXPECT_DOUBLE_EQ(R.IdentityScore, extTspScore(Iota, C.Sizes, C.Edges));
    if (R.KeptIdentity)
      EXPECT_EQ(R.Order, Iota);
    else
      EXPECT_GT(R.Score, R.IdentityScore);
  }
}

TEST(ExtTspTest, SolverIsDeterministic) {
  std::mt19937 Rng(7);
  for (int Trial = 0; Trial < 50; ++Trial) {
    RandomCfg C = makeCfg(Rng);
    ExtTspResult A = extTspOrder(C.Sizes, C.Edges);
    // Shuffling the edge list must not change the result: the solver
    // aggregates into a canonical form before chaining.
    std::shuffle(C.Edges.begin(), C.Edges.end(), Rng);
    ExtTspResult B = extTspOrder(C.Sizes, C.Edges);
    EXPECT_EQ(A.Order, B.Order) << "trial=" << Trial;
    EXPECT_DOUBLE_EQ(A.Score, B.Score) << "trial=" << Trial;
    EXPECT_EQ(A.ChainMerges, B.ChainMerges) << "trial=" << Trial;
  }
}

TEST(ExtTspTest, DiamondCfgChainsTheHotPath) {
  // 0 -> 1 (hot) / 0 -> 2 (cold), both -> 3. Index order interposes the
  // cold block between the hot edge's endpoints; ext-TSP moves it out so
  // 0->1 and 1->3 fall through.
  std::vector<uint32_t> Sizes = {16, 16, 600, 16};
  std::vector<ExtTspEdge> Edges = {
      {0, 1, 1000}, {0, 2, 1}, {1, 3, 1000}, {2, 3, 1}};
  ExtTspResult R = extTspOrder(Sizes, Edges);
  EXPECT_FALSE(R.KeptIdentity);
  std::vector<uint32_t> Want = {0, 1, 3, 2};
  EXPECT_EQ(R.Order, Want);
  EXPECT_GT(R.Score, R.IdentityScore);
}

TEST(ExtTspTest, DegenerateCfgsKeepIdentity) {
  // Too small to benefit, or nothing to steer by — identity, not a crash.
  EXPECT_TRUE(extTspOrder({}, {}).KeptIdentity);
  EXPECT_TRUE(extTspOrder({8}, {}).KeptIdentity);
  EXPECT_TRUE(extTspOrder({8, 8}, {{0, 1, 5}}).KeptIdentity);
  EXPECT_TRUE(extTspOrder({8, 8, 8}, {}).KeptIdentity);
  // Self-loops and out-of-range endpoints are dropped, leaving nothing.
  EXPECT_TRUE(extTspOrder({8, 8, 8}, {{1, 1, 9}, {7, 2, 9}}).KeptIdentity);
}

//===----------------------------------------------------------------------===//
// Build-level determinism: --blocks exttsp at any --jobs.
//===----------------------------------------------------------------------===//

const char *kBranchyWorkload = R"(
class Main {
  static int classify(int x) {
    if (x % 15 == 0) { return 3; }
    if (x % 3 == 0) { return 1; }
    if (x % 5 == 0) { return 2; }
    return 0;
  }
  static int main() {
    int[] tally = new int[4];
    for (int i = 1; i <= 200; i = i + 1) {
      tally[classify(i)] = tally[classify(i)] + 1;
    }
    Sys.print("tally: " + tally[0] + " " + tally[1] + " " + tally[2] + " "
              + tally[3]);
    return tally[0];
  }
}
)";

std::vector<uint8_t> buildExtTspImage(int Jobs, std::string *EdgesCsv) {
  setJobs(Jobs);
  Program P;
  std::vector<std::string> Errors;
  if (!compileSources({kBranchyWorkload}, P, Errors)) {
    for (const std::string &E : Errors)
      ADD_FAILURE() << E;
    return {};
  }
  BuildConfig ProfCfg;
  ProfCfg.Seed = 1001;
  CollectedProfiles Prof = collectProfiles(P, ProfCfg, RunConfig());
  if (EdgesCsv)
    *EdgesCsv = Prof.Edges.toCsv();

  BuildConfig Cfg;
  Cfg.Seed = 5;
  Cfg.CodeOrder = CodeStrategy::MethodOrder;
  Cfg.CodeProf = &Prof.Method;
  Cfg.Split = SplitMode::HotCold;
  Cfg.SplitOpts.Blocks = BlockOrderMode::ExtTsp;
  Cfg.BlockProf = &Prof.Blocks;
  Cfg.EdgeProf = &Prof.Edges;
  NativeImage Img = buildNativeImage(P, Cfg);
  EXPECT_FALSE(Img.Built.Failed) << Img.Built.FailureMessage;
  EXPECT_TRUE(Img.Split.ExtTsp.Requested);
  return serializeImage(P, Img);
}

TEST(ExtTspTest, BuildIsByteIdenticalAtAnyJobs) {
  std::string EdgesOne;
  std::vector<uint8_t> One = buildExtTspImage(1, &EdgesOne);
  ASSERT_FALSE(One.empty());
  for (int Jobs : {2, 5, 8}) {
    std::string EdgesJ;
    std::vector<uint8_t> J = buildExtTspImage(Jobs, &EdgesJ);
    EXPECT_EQ(EdgesOne, EdgesJ) << "jobs=" << Jobs;
    EXPECT_EQ(One, J) << "jobs=" << Jobs;
  }
  setJobs(0);
}

} // namespace
